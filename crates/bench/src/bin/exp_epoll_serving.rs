//! **F17 — epoll event-loop serving: wire fidelity and connection scale.**
//!
//! The blocking engine spends two OS threads per connection; the epoll
//! engine multiplexes every connection onto one readiness-driven loop
//! feeding the same micro-batch scheduler. This experiment pins down the
//! two claims that justify the second engine:
//!
//! 1. **Wire fidelity.** Reply frames are bit-identical to the blocking
//!    engine's — for a mixed pipelined request stream and sequentially,
//!    frame payload for frame payload. Asserted before any timing, and
//!    again for every reply received during the storm (each storm reply
//!    is byte-compared against a blocking-engine reference).
//! 2. **Connection scale.** A storm of 1024 concurrent connections, each
//!    with a request in flight, completes with zero corrupted replies;
//!    client-observed p50/p99 latency is reported. A 256-connection leg
//!    runs against both engines to report the throughput ratio.
//!
//! Writes `results/BENCH_epoll_serving.json`.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_epoll_serving [--quick]`

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn main() {
    println!("F17 exercises the epoll engine (linux/x86_64 only); skipping");
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn main() {
    imp::main();
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use cbir_bench::Table;
    use cbir_core::{ImageDatabase, ImageMeta, IndexKind, QueryEngine};
    use cbir_distance::Measure;
    use cbir_features::{FeatureSpec, Pipeline, Quantizer};
    use cbir_server::protocol::{
        decode_response, encode_request, read_frame, write_frame, Request, Response,
    };
    use cbir_server::{EventLoopConfig, SchedulerConfig, Server, ServerHandle};
    use std::io::Write;
    use std::net::{SocketAddr, TcpStream};
    use std::sync::{Arc, Barrier};
    use std::time::{Duration, Instant};

    const DIM: usize = 64;
    const K: usize = 8;
    const STORM_THREADS: usize = 16;
    const STORM_CONNS_PER_THREAD: usize = 64; // 1024 concurrent connections
    const RATIO_CONNS_PER_THREAD: usize = 16; // 256 concurrent connections

    fn engine(n: usize) -> Arc<QueryEngine> {
        let pipeline = Pipeline::new(
            DIM as u32,
            vec![FeatureSpec::ColorHistogram(Quantizer::Gray {
                bins: DIM as u32,
            })],
        )
        .expect("static pipeline");
        let mut db = ImageDatabase::new(pipeline);
        for (i, v) in cbir_workload::histograms(n, DIM, 1.0, 42)
            .into_iter()
            .enumerate()
        {
            db.insert_descriptor(
                ImageMeta {
                    name: format!("img-{i:05}"),
                    label: Some((i % 7) as u32),
                },
                v,
            )
            .expect("insert descriptor");
        }
        // VP-tree keeps per-query compute small so the measurement
        // isolates the connection layer, not the scan kernel (F9 covers
        // that axis).
        Arc::new(QueryEngine::build(db, IndexKind::VpTree, Measure::L1).expect("build engine"))
    }

    fn sched() -> SchedulerConfig {
        SchedulerConfig {
            max_batch: 64,
            max_delay: Duration::from_micros(200),
            queue_cap: 4096,
            exec_threads: std::thread::available_parallelism().map_or(1, |t| t.get()),
            ..SchedulerConfig::default()
        }
    }

    fn spawn_blocking(engine: &Arc<QueryEngine>) -> ServerHandle {
        Server::spawn_shared(Arc::clone(engine), "127.0.0.1:0", sched()).expect("spawn blocking")
    }

    fn spawn_event(engine: &Arc<QueryEngine>) -> ServerHandle {
        Server::spawn_event_shared(
            Arc::clone(engine),
            "127.0.0.1:0",
            sched(),
            EventLoopConfig::default(),
        )
        .expect("spawn event")
    }

    /// Send every request down one connection in a single pipelined
    /// burst, then collect the reply frame payloads in order.
    fn pipelined_payloads(addr: SocketAddr, requests: &[Request]) -> Vec<Vec<u8>> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut burst = Vec::new();
        for r in requests {
            write_frame(&mut burst, &encode_request(r)).expect("encode");
        }
        stream.write_all(&burst).expect("send burst");
        (0..requests.len())
            .map(|_| read_frame(&mut stream).expect("read").expect("reply"))
            .collect()
    }

    /// One fresh connection per request: the unpipelined reference.
    fn sequential_payloads(addr: SocketAddr, requests: &[Request]) -> Vec<Vec<u8>> {
        requests
            .iter()
            .map(|r| pipelined_payloads(addr, std::slice::from_ref(r)).remove(0))
            .collect()
    }

    /// Frame-level bit-identity gate: a deterministic mixed stream must
    /// produce byte-identical reply payloads from both engines, whether
    /// pipelined or issued one connection per request.
    fn assert_wire_identity(engine: &Arc<QueryEngine>) {
        let d = |i: usize| engine.database().descriptor(i).unwrap().to_vec();
        let requests = vec![
            Request::Ping,
            Request::Knn {
                k: K as u32,
                deadline_us: 0,
                recall_target: 1.0,
                descriptor: d(0),
            },
            Request::KnnById {
                k: 5,
                deadline_us: 0,
                recall_target: 1.0,
                id: 3,
            },
            Request::Range {
                radius: 0.4,
                deadline_us: 0,
                descriptor: d(1),
            },
            Request::GetDescriptor { id: 2 },
            Request::Knn {
                k: 1,
                deadline_us: 0,
                recall_target: 1.0,
                descriptor: d(2),
            },
            Request::KnnById {
                k: K as u32,
                deadline_us: 0,
                recall_target: 1.0,
                id: 0,
            },
            Request::Ping,
        ];
        let blocking = spawn_blocking(engine);
        let event = spawn_event(engine);
        let want = pipelined_payloads(blocking.local_addr(), &requests);
        let got_pipelined = pipelined_payloads(event.local_addr(), &requests);
        let got_sequential = sequential_payloads(event.local_addr(), &requests);
        for (i, w) in want.iter().enumerate() {
            assert_eq!(
                *w, got_pipelined[i],
                "request {i}: pipelined epoll reply diverges from blocking"
            );
            assert_eq!(
                *w, got_sequential[i],
                "request {i}: sequential epoll reply diverges from blocking"
            );
        }
        blocking.shutdown();
        event.shutdown();
    }

    /// Precompute the request frames and their blocking-engine reply
    /// payloads for a pool of by-id queries; every storm reply is
    /// byte-compared against this reference.
    fn reference_replies(
        engine: &Arc<QueryEngine>,
        pool_size: usize,
    ) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let blocking = spawn_blocking(engine);
        let mut stream = TcpStream::connect(blocking.local_addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut frames = Vec::with_capacity(pool_size);
        let mut replies = Vec::with_capacity(pool_size);
        for id in 0..pool_size {
            let req = Request::KnnById {
                k: K as u32,
                deadline_us: 0,
                recall_target: 1.0,
                id: id as u64,
            };
            let mut frame = Vec::new();
            write_frame(&mut frame, &encode_request(&req)).expect("encode");
            stream.write_all(&frame).expect("send");
            let payload = read_frame(&mut stream).expect("read").expect("reply");
            frames.push(frame);
            replies.push(payload);
        }
        match decode_response(&replies[0]).expect("decode reference") {
            Response::Hits { hits, .. } => assert_eq!(hits.len(), K, "reference reply shape"),
            other => panic!("reference reply is not Hits: {other:?}"),
        }
        blocking.shutdown();
        (frames, replies)
    }

    struct StormOutcome {
        qps: f64,
        p50_us: u64,
        p99_us: u64,
        corrupted: u64,
    }

    /// Hold `threads * conns_per_thread` connections open concurrently,
    /// each with one request in flight per round; byte-compare every
    /// reply against the blocking-engine reference.
    fn storm(
        addr: SocketAddr,
        threads: usize,
        conns_per_thread: usize,
        rounds: usize,
        frames: &[Vec<u8>],
        expected: &[Vec<u8>],
    ) -> StormOutcome {
        let barrier = Arc::new(Barrier::new(threads + 1));
        let start = Arc::new(std::sync::Mutex::new(None::<Instant>));
        let (elapsed, per_thread) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        let mut conns: Vec<TcpStream> = (0..conns_per_thread)
                            .map(|_| {
                                let s = TcpStream::connect(addr).expect("connect");
                                s.set_nodelay(true).expect("nodelay");
                                s.set_read_timeout(Some(Duration::from_secs(30)))
                                    .expect("timeout");
                                s
                            })
                            .collect();
                        barrier.wait();
                        let mut lats = Vec::with_capacity(conns_per_thread * rounds);
                        let mut bad = 0u64;
                        let mut sent = vec![(0usize, Instant::now()); conns_per_thread];
                        for round in 0..rounds {
                            for (c, s) in conns.iter_mut().enumerate() {
                                let idx = (t * conns_per_thread + c + round * 7919) % frames.len();
                                s.write_all(&frames[idx]).expect("send");
                                sent[c] = (idx, Instant::now());
                            }
                            for (c, s) in conns.iter_mut().enumerate() {
                                let payload =
                                    read_frame(s).expect("read reply").expect("reply frame");
                                let (idx, at) = sent[c];
                                lats.push(at.elapsed().as_micros() as u64);
                                if payload != expected[idx] {
                                    bad += 1;
                                }
                            }
                        }
                        (lats, bad)
                    })
                })
                .collect();
            barrier.wait();
            *start.lock().unwrap() = Some(Instant::now());
            let per_thread: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let elapsed = start.lock().unwrap().unwrap().elapsed();
            (elapsed, per_thread)
        });
        let mut lats: Vec<u64> = Vec::new();
        let mut corrupted = 0u64;
        for (l, bad) in per_thread {
            lats.extend(l);
            corrupted += bad;
        }
        lats.sort_unstable();
        let pctl = |p: f64| lats[((lats.len() as f64 * p) as usize).min(lats.len() - 1)];
        StormOutcome {
            qps: lats.len() as f64 / elapsed.as_secs_f64(),
            p50_us: pctl(0.50),
            p99_us: pctl(0.99),
            corrupted,
        }
    }

    pub fn main() {
        let quick = std::env::args().any(|a| a == "--quick");
        let n: usize = if quick { 4_096 } else { 50_000 };
        let storm_rounds = if quick { 2 } else { 8 };
        let ratio_rounds = if quick { 4 } else { 32 };
        let storm_conns = STORM_THREADS * STORM_CONNS_PER_THREAD;
        let ratio_conns = STORM_THREADS * RATIO_CONNS_PER_THREAD;

        let engine = engine(n);
        println!(
            "F17: epoll serving, N={n}, d={DIM}, k={K}, storm {storm_conns} conns x \
             {storm_rounds} rounds, ratio leg {ratio_conns} conns x {ratio_rounds} rounds\n"
        );

        assert_wire_identity(&engine);
        println!(
            "wire identity: epoll reply frames bit-identical to blocking (pipelined + sequential)"
        );
        let (frames, expected) = reference_replies(&engine, 256.min(n));
        println!(
            "reference: {} by-id replies captured from the blocking engine\n",
            frames.len()
        );

        // The headline gate: >= 1k concurrent connections, every reply
        // byte-compared against the blocking reference.
        assert!(
            storm_conns >= 1000,
            "storm must hold at least 1k connections"
        );
        let event = spawn_event(&engine);
        let storm_out = storm(
            event.local_addr(),
            STORM_THREADS,
            STORM_CONNS_PER_THREAD,
            storm_rounds,
            &frames,
            &expected,
        );
        event.shutdown();
        assert_eq!(
            storm_out.corrupted, 0,
            "storm produced corrupted replies under {storm_conns} connections"
        );

        // Throughput ratio at a load both engines handle comfortably.
        let blocking = spawn_blocking(&engine);
        let ratio_blocking = storm(
            blocking.local_addr(),
            STORM_THREADS,
            RATIO_CONNS_PER_THREAD,
            ratio_rounds,
            &frames,
            &expected,
        );
        blocking.shutdown();
        let event = spawn_event(&engine);
        let ratio_event = storm(
            event.local_addr(),
            STORM_THREADS,
            RATIO_CONNS_PER_THREAD,
            ratio_rounds,
            &frames,
            &expected,
        );
        event.shutdown();
        assert_eq!(ratio_blocking.corrupted, 0, "blocking ratio leg corrupted");
        assert_eq!(ratio_event.corrupted, 0, "event ratio leg corrupted");
        let ratio = ratio_event.qps / ratio_blocking.qps;

        let mut table = Table::new(&["leg", "engine", "conns", "q/s", "p50-us", "p99-us"]);
        table.row(vec![
            "storm".into(),
            "epoll".into(),
            storm_conns.to_string(),
            format!("{:.0}", storm_out.qps),
            storm_out.p50_us.to_string(),
            storm_out.p99_us.to_string(),
        ]);
        table.row(vec![
            "ratio".into(),
            "blocking".into(),
            ratio_conns.to_string(),
            format!("{:.0}", ratio_blocking.qps),
            ratio_blocking.p50_us.to_string(),
            ratio_blocking.p99_us.to_string(),
        ]);
        table.row(vec![
            "ratio".into(),
            "epoll".into(),
            ratio_conns.to_string(),
            format!("{:.0}", ratio_event.qps),
            ratio_event.p50_us.to_string(),
            ratio_event.p99_us.to_string(),
        ]);
        table.print();
        println!("\nthroughput ratio (epoll / blocking) at {ratio_conns} conns: {ratio:.2}x");
        println!(
            "storm corruption: 0 of {} replies diverged from the blocking reference",
            { storm_conns * storm_rounds }
        );

        if quick {
            // Quick mode exists for the gates; reduced sizes make the
            // timings meaningless, so write nothing.
            println!("\nquick mode: skipping results/BENCH_epoll_serving.json");
            return;
        }
        let json = format!(
            "{{\n  \"experiment\": \"epoll_serving\",\n  \"n\": {n},\n  \"dim\": {DIM},\n  \"k\": {K},\n  \"index\": \"vptree\",\n  \"measure\": \"l1\",\n  \"wire_identity\": \"epoll reply frames bit-identical to blocking, pipelined and sequential\",\n  \"storm\": {{\"conns\": {storm_conns}, \"rounds\": {storm_rounds}, \"qps\": {:.1}, \"latency_p50_us\": {}, \"latency_p99_us\": {}, \"corrupted\": {}}},\n  \"ratio_leg\": {{\"conns\": {ratio_conns}, \"rounds\": {ratio_rounds}, \"blocking_qps\": {:.1}, \"event_qps\": {:.1}, \"blocking_p99_us\": {}, \"event_p99_us\": {}, \"throughput_ratio\": {ratio:.3}}}\n}}\n",
            storm_out.qps,
            storm_out.p50_us,
            storm_out.p99_us,
            storm_out.corrupted,
            ratio_blocking.qps,
            ratio_event.qps,
            ratio_blocking.p99_us,
            ratio_event.p99_us,
        );
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write("results/BENCH_epoll_serving.json", json).expect("write results");
        println!("\nwrote results/BENCH_epoll_serving.json");
    }
}
