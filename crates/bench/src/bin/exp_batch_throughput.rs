//! **F8 — batched query throughput.**
//!
//! Single-query-loop vs. batched k-NN execution for every index in the
//! lineup: queries/second at batch sizes 1, 16, and 256, with 1 worker
//! thread and with all available cores. Batched execution reuses one
//! [`cbir_index::QueryScratch`] per worker (zero steady-state allocation)
//! and, on the sequential scan, runs the monomorphized
//! `Measure::dist_to_many` kernel over the contiguous dataset — so on
//! one worker the batch path matches the single-query loop (batching
//! adds no overhead), and thread fan-out multiplies throughput by the
//! worker count on multi-core hosts.
//!
//! Every batched result list is checked bit-identical against the
//! single-query loop before any timing is reported.
//!
//! Writes `results/BENCH_query_throughput.json`.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_batch_throughput [--quick]`

use cbir_bench::{build_lineup_index, clustered_dataset, index_lineup, standard_queries, Table};
use cbir_index::{knn_batch_parallel, BatchStats, SearchStats};
use std::time::Instant;

const K: usize = 10;

/// Queries/second for one timed closure over `n_queries`, median of `iters`.
fn qps<F: FnMut()>(iters: usize, n_queries: usize, mut f: F) -> f64 {
    assert!(iters > 0);
    let mut rates: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            n_queries as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 2_000 } else { 10_000 };
    const DIM: usize = 16;
    let n_queries = 256usize;
    let iters = if quick { 3 } else { 5 };
    let max_threads = std::thread::available_parallelism().map_or(1, |t| t.get());

    let dataset = clustered_dataset(n, DIM, 91);
    let queries = standard_queries(&dataset, n_queries, 17);
    let batch_sizes = [1usize, 16, 256];
    let thread_counts: Vec<usize> = if max_threads > 1 {
        vec![1, max_threads]
    } else {
        vec![1]
    };

    println!("F8: single vs batched k-NN throughput, N={n}, d={DIM}, k={K}, {n_queries} queries\n");
    let mut table = Table::new(&["index", "batch", "threads", "q/s", "vs-single-loop"]);
    let mut json_rows: Vec<String> = Vec::new();

    for kind in index_lineup() {
        let index = build_lineup_index(&kind, dataset.clone());

        // Exactness first: the batched path must reproduce the
        // single-query loop bit-for-bit before its speed means anything.
        let single_results: Vec<_> = queries
            .iter()
            .map(|q| {
                let mut stats = SearchStats::new();
                index.knn_search(q, K, &mut stats)
            })
            .collect();
        for &threads in &thread_counts {
            let mut stats = BatchStats::new();
            let batched = knn_batch_parallel(index.as_ref(), &queries, K, threads, &mut stats);
            assert_eq!(
                batched,
                single_results,
                "{}: batched results diverge from single-query loop",
                kind.name()
            );
        }

        let single_qps = qps(iters, n_queries, || {
            for q in &queries {
                let mut stats = SearchStats::new();
                std::hint::black_box(index.knn_search(q, K, &mut stats));
            }
        });
        table.row(vec![
            kind.name().to_string(),
            "-".into(),
            "1".into(),
            format!("{single_qps:.0}"),
            "1.00x".into(),
        ]);

        let mut batch_json: Vec<String> = Vec::new();
        for &batch in &batch_sizes {
            for &threads in &thread_counts {
                let rate = qps(iters, n_queries, || {
                    for chunk in queries.chunks(batch) {
                        let mut stats = BatchStats::new();
                        std::hint::black_box(knn_batch_parallel(
                            index.as_ref(),
                            chunk,
                            K,
                            threads,
                            &mut stats,
                        ));
                    }
                });
                table.row(vec![
                    kind.name().to_string(),
                    batch.to_string(),
                    threads.to_string(),
                    format!("{rate:.0}"),
                    format!("{:.2}x", rate / single_qps),
                ]);
                batch_json.push(format!(
                    "{{\"batch\": {batch}, \"threads\": {threads}, \"qps\": {rate:.1}}}"
                ));
            }
        }
        json_rows.push(format!(
            "    {{\"index\": \"{}\", \"single_qps\": {:.1}, \"batched\": [{}]}}",
            json_escape(kind.name()),
            single_qps,
            batch_json.join(", ")
        ));
    }
    table.print();
    println!("\nExpected shape: at 1 thread, batched execution matches the");
    println!("single-query loop on every index (same kernels, same scratch");
    println!("path — batching adds no overhead); at N threads the fan-out");
    println!("multiplies q/s by ~N on multi-core hosts.");

    if quick {
        // Quick mode exists for the bit-identity assertions; don't clobber
        // committed full-mode numbers with reduced-size timings.
        println!("\nquick mode: skipping results/BENCH_query_throughput.json");
        return;
    }
    let json = format!(
        "{{\n  \"experiment\": \"batch_query_throughput\",\n  \"n\": {n},\n  \"dim\": {DIM},\n  \"k\": {K},\n  \"queries\": {n_queries},\n  \"max_threads\": {max_threads},\n  \"exactness\": \"batched results asserted bit-identical to single-query loop\",\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_query_throughput.json", json).expect("write results");
    println!("\nwrote results/BENCH_query_throughput.json");
}
