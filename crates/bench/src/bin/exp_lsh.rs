//! **F7 (extension) — approximate search: LSH recall vs. speedup.**
//!
//! The exact indexes elsewhere in the suite never miss a neighbour; LSH
//! buys additional speed by accepting misses. This sweep maps the
//! recall/cost frontier over the number of hash tables and the bucket
//! width, against the exact linear scan.
//!
//! Superseded for end-to-end evaluation by F14 (`exp_approx_search`),
//! which folds the LSH recall evaluation into the serving-path two-stage
//! pipeline and compares it against the truncated-Haar signature table
//! and best-bin-first backends at dim ∈ {16, 64, 256}. This sweep remains
//! as the parameter-sensitivity study (tables × width) for the LSH
//! backend alone.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_lsh [--quick]`

use cbir_bench::{clustered_dataset, Table};
use cbir_distance::Measure;
use cbir_index::{knn_search_simple, LinearScan, LshIndex, SearchStats};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 5_000 } else { 20_000 };
    const DIM: usize = 16;
    const K: usize = 10;
    let n_queries = if quick { 15 } else { 40 };

    let dataset = clustered_dataset(n, DIM, 61);
    // Query-by-example workload: perturbed database members. (Far random
    // points are uninteresting for LSH: their "nearest" neighbours are at
    // cluster scale and share no buckets at any useful width.)
    let members: Vec<Vec<f32>> = (0..dataset.len())
        .map(|i| dataset.vector(i).to_vec())
        .collect();
    let queries = cbir_workload::queries(&members, n_queries * 4 / 3, 0.5, 23)
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 4 != 3) // drop the uniform 25%
        .map(|(_, q)| q)
        .take(n_queries)
        .collect::<Vec<_>>();
    let lin = LinearScan::build(dataset.clone(), Measure::L2).expect("linear");
    let exact: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| knn_search_simple(&lin, q, K).iter().map(|h| h.id).collect())
        .collect();

    println!("F7 (extension): LSH recall vs cost, N={n}, d={DIM}, k={K}\n");
    let mut table = Table::new(&[
        "tables",
        "hashes",
        "width",
        "recall@10",
        "dist-comps",
        "frac-of-scan",
    ]);
    // Widths are in projection units: projections of points spanning
    // ~100 per axis have magnitudes in the hundreds, and near neighbours
    // differ by a few units times a unit Gaussian, so useful widths sit in
    // the tens.
    let configs: &[(usize, usize, f32)] = &[
        (4, 8, 16.0),
        (8, 8, 16.0),
        (8, 6, 16.0),
        (8, 8, 32.0),
        (16, 8, 32.0),
        (16, 6, 48.0),
        (32, 6, 64.0),
    ];
    for &(tables, hashes, width) in configs {
        let lsh = LshIndex::build(dataset.clone(), tables, hashes, width, 7).expect("lsh");
        let mut stats = SearchStats::new();
        let mut recall_sum = 0.0f64;
        for (q, truth) in queries.iter().zip(&exact) {
            let got: Vec<usize> = lsh
                .knn_search(q, K, &mut stats)
                .iter()
                .map(|h| h.id)
                .collect();
            let hits = truth.iter().filter(|id| got.contains(id)).count();
            recall_sum += hits as f64 / truth.len() as f64;
        }
        let comps = stats.distance_computations as f64 / queries.len() as f64;
        table.row(vec![
            tables.to_string(),
            hashes.to_string(),
            format!("{width}"),
            format!("{:.3}", recall_sum / queries.len() as f64),
            format!("{comps:.0}"),
            format!("{:.4}", comps / n as f64),
        ]);
    }
    table.print();
    println!("\nExpected shape: recall climbs with more tables and wider");
    println!("buckets, at proportionally more distance computations; the");
    println!("frontier sits far below the exact scan's cost at recall >= 0.9.");
}
