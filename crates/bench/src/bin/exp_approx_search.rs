//! **F14 — two-stage coarse-to-fine approximate search: recall vs. speedup.**
//!
//! Sweeps the three coarse backends behind the `ApproxSearch` trait —
//! the truncated/quantized Haar signature table, the bounded-leaf
//! best-bin-first kd variant, and E2LSH (folding the old F7-extension
//! recall evaluation into this experiment) — over recall targets at
//! dim ∈ {16, 64, 256}, against the best exact index from the lineup.
//! Every approximate configuration runs the same two-stage pipeline the
//! serving path uses: coarse candidates under the planner's budget for
//! the recall target, then exact rerank with the batched distance
//! kernels.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_approx_search [--quick]`
//!
//! Writes `results/BENCH_approx_search.json` (full mode only) and, in
//! full mode, asserts the paper-level claim: at dim 64 and 256 some
//! approximate configuration reaches >= 5x speedup over the best exact
//! index at measured recall >= 0.9.

use cbir_bench::Table;
use cbir_core::plan_candidate_budget;
use cbir_distance::Measure;
use cbir_index::Dataset;
use cbir_index::{
    approx_knn_batch, knn_search_simple, ApproxSearch, BatchStats, BestBinFirst, CoarseHaarIndex,
    KdTree, LinearScan, LshIndex, SearchIndex, VpTree,
};
use std::time::Instant;

const K: usize = 10;

/// Median wall time of `iters` runs of `f`, in microseconds.
fn median_us(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Fraction of the true top-k ids the approximate result recovered,
/// averaged over queries.
fn mean_recall(got: &[Vec<usize>], truth: &[Vec<usize>]) -> f64 {
    got.iter()
        .zip(truth)
        .map(|(g, t)| t.iter().filter(|id| g.contains(id)).count() as f64 / t.len() as f64)
        .sum::<f64>()
        / truth.len() as f64
}

struct MethodRow {
    method: &'static str,
    recall_target: f32,
    budget: usize,
    recall: f64,
    per_query_us: f64,
    speedup: f64,
    coarse_candidates: f64,
    rerank_evaluations: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 4_000 } else { 40_000 };
    let n_queries = if quick { 12 } else { 40 };
    let timing_iters = if quick { 1 } else { 3 };
    let dims: &[usize] = &[16, 64, 256];
    let recall_targets: &[f32] = &[0.8, 0.9, 0.95];

    println!(
        "F14: two-stage approximate search, N={n}, k={K}, {n_queries} queries{}\n",
        if quick { " (quick)" } else { "" }
    );

    let mut json_dims = Vec::new();
    let mut acceptance_ok = true;
    for &dim in dims {
        // Image-like near-duplicate retrieval: many small groups (~64
        // members — one "scene" and its variants), white high-dimensional
        // centres so exact spatial pruning stays collapsed (the regime
        // approximate search exists for; the easy tight-cluster regime
        // where a kd-tree answers in one leaf is F6's chart), and
        // spatially smooth within-group residuals — the low-frequency-
        // dominant spectrum of real image descriptors, which is the
        // structure the truncated-Haar coarse stage exploits.
        let clusters = (n / 64).max(8);
        let vecs =
            cbir_workload::clustered_smooth(n, dim, clusters, 10.0, 100.0, 8, 61 + dim as u64);
        let dataset = Dataset::from_vectors(&vecs).expect("valid workload");
        // Query-by-example workload: perturbed database members, as the
        // folded LSH experiment used (uniform random points have no
        // meaningful neighbours for a bucketed coarse stage).
        let members: Vec<Vec<f32>> = (0..dataset.len())
            .map(|i| dataset.vector(i).to_vec())
            .collect();
        let queries: Vec<Vec<f32>> = cbir_workload::queries(&members, n_queries * 4 / 3, 5.0, 23)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % 4 != 3) // drop the uniform 25%
            .map(|(_, q)| q)
            .take(n_queries)
            .collect();

        // Ground truth and the exact baseline: the fastest exact index
        // on this workload (the lineup's contenders for query-by-example
        // at these dimensionalities).
        let exact_indexes: Vec<(&'static str, Box<dyn SearchIndex>)> = vec![
            (
                "linear",
                Box::new(LinearScan::build(dataset.clone(), Measure::L2).expect("linear")),
            ),
            (
                "kd",
                Box::new(KdTree::build(dataset.clone(), Measure::L2).expect("kd")),
            ),
            (
                "vp",
                Box::new(VpTree::build(dataset.clone(), Measure::L2).expect("vp")),
            ),
        ];
        let truth: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| {
                knn_search_simple(exact_indexes[0].1.as_ref(), q, K)
                    .iter()
                    .map(|h| h.id)
                    .collect()
            })
            .collect();
        let mut best_exact = ("", f64::INFINITY);
        let mut exact_rows = Vec::new();
        for (name, index) in &exact_indexes {
            let total_us = median_us(timing_iters, || {
                for q in &queries {
                    std::hint::black_box(knn_search_simple(index.as_ref(), q, K));
                }
            });
            let per_query = total_us / queries.len() as f64;
            exact_rows.push((name, per_query));
            if per_query < best_exact.1 {
                best_exact = (name, per_query);
            }
        }

        // The coarse backends, built once per dimension. The LSH
        // configuration scales the bucket width with sqrt(dim) — the
        // unnormalized Gaussian projections spread hash values by the
        // within-group L2 diameter, which grows with sqrt(dim) — and uses
        // a short 4-hash concatenation so the per-table collision
        // probability for true neighbours survives the AND construction.
        let haar = CoarseHaarIndex::build(&dataset, CoarseHaarIndex::default_coefficients(dim))
            .expect("haar");
        let bbf = BestBinFirst::build(&dataset).expect("bbf");
        let lsh_width = 40.0 * (dim as f32).sqrt();
        let lsh = LshIndex::build(dataset.clone(), 16, 4, lsh_width, 7).expect("lsh");
        let methods: Vec<(&'static str, &dyn ApproxSearch)> =
            vec![("coarse-haar", &haar), ("bbf", &bbf), ("lsh", &lsh)];

        println!(
            "dim {dim}: exact baseline {} at {:.1} us/query ({})",
            best_exact.0,
            best_exact.1,
            exact_rows
                .iter()
                .map(|(n, us)| format!("{n} {us:.1}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let mut table = Table::new(&[
            "method",
            "target",
            "budget",
            "recall@10",
            "us/query",
            "speedup",
            "coarse",
            "rerank",
        ]);
        let mut rows = Vec::new();
        for (method, coarse) in &methods {
            for &rt in recall_targets {
                let budget = plan_candidate_budget(n, K, rt)
                    .expect("targets below 1.0 always plan a budget");
                let mut results = Vec::new();
                let mut stats = BatchStats::new();
                let total_us = median_us(timing_iters, || {
                    stats = BatchStats::new();
                    results = approx_knn_batch(
                        *coarse,
                        &dataset,
                        &Measure::L2,
                        &queries,
                        K,
                        budget,
                        &mut stats,
                    );
                });
                let got: Vec<Vec<usize>> = results
                    .iter()
                    .map(|hits| hits.iter().map(|h| h.id).collect())
                    .collect();
                let recall = mean_recall(&got, &truth);
                let per_query_us = total_us / queries.len() as f64;
                let row = MethodRow {
                    method,
                    recall_target: rt,
                    budget,
                    recall,
                    per_query_us,
                    speedup: best_exact.1 / per_query_us,
                    coarse_candidates: stats.total().coarse_candidates as f64
                        / queries.len() as f64,
                    rerank_evaluations: stats.total().rerank_evaluations as f64
                        / queries.len() as f64,
                };
                table.row(vec![
                    row.method.to_string(),
                    format!("{rt}"),
                    row.budget.to_string(),
                    format!("{:.3}", row.recall),
                    format!("{:.1}", row.per_query_us),
                    format!("{:.1}x", row.speedup),
                    format!("{:.0}", row.coarse_candidates),
                    format!("{:.0}", row.rerank_evaluations),
                ]);
                rows.push(row);
            }
        }
        table.print();
        println!();

        // The paper-level acceptance claim, checked at full scale: some
        // configuration reaches >= 5x at measured recall >= 0.9.
        if dim >= 64 {
            let best = rows
                .iter()
                .filter(|r| r.recall >= 0.9)
                .map(|r| r.speedup)
                .fold(0.0f64, f64::max);
            let pass = best >= 5.0;
            println!(
                "dim {dim} acceptance (>=5x at recall >=0.9): best {best:.1}x -> {}{}",
                if pass { "PASS" } else { "FAIL" },
                if quick {
                    " (informational — gated at full scale only)"
                } else {
                    ""
                }
            );
            if !quick {
                acceptance_ok &= pass;
            }
        }
        println!();

        let row_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"method\": \"{}\", \"recall_target\": {}, \"budget\": {}, \
                     \"recall\": {:.4}, \"per_query_us\": {:.1}, \"speedup\": {:.2}, \
                     \"coarse_candidates\": {:.0}, \"rerank_evaluations\": {:.0}}}",
                    r.method,
                    r.recall_target,
                    r.budget,
                    r.recall,
                    r.per_query_us,
                    r.speedup,
                    r.coarse_candidates,
                    r.rerank_evaluations
                )
            })
            .collect();
        json_dims.push(format!(
            "    {{\"dim\": {dim}, \"best_exact\": \"{}\", \"best_exact_us\": {:.1}, \
             \"exact\": {{{}}}, \"rows\": [\n      {}\n    ]}}",
            best_exact.0,
            best_exact.1,
            exact_rows
                .iter()
                .map(|(n, us)| format!("\"{n}\": {us:.1}"))
                .collect::<Vec<_>>()
                .join(", "),
            row_json.join(",\n      ")
        ));
    }

    if quick {
        println!("quick mode: skipping results/BENCH_approx_search.json");
        return;
    }
    let json = format!(
        "{{\n  \"experiment\": \"approx_search\",\n  \"n\": {n},\n  \"k\": {K},\n  \
         \"queries\": {n_queries},\n  \"measure\": \"l2\",\n  \
         \"pipeline\": \"coarse candidates under the recall-target budget, exact rerank\",\n  \
         \"dims\": [\n{}\n  ]\n}}\n",
        json_dims.join(",\n")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_approx_search.json", json).expect("write results");
    println!("wrote results/BENCH_approx_search.json");
    assert!(
        acceptance_ok,
        "acceptance failed: no configuration reached 5x speedup at recall >= 0.9 \
         for some dim in {{64, 256}}"
    );
}
