//! **T7 — relevance feedback: precision vs. feedback round.**
//!
//! Query-by-example with Rocchio refinement: after each round, results are
//! marked by class ground truth (simulating the user) and the query moves
//! toward the relevant centroid. The paper-shape claim: precision improves
//! over the first couple of rounds and then saturates, with most of the
//! gain in round one.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_feedback [--quick]`

use cbir_bench::Table;
use cbir_core::eval::mean;
use cbir_core::feedback::{feedback_round, RocchioParams};
use cbir_core::{ImageDatabase, IndexKind, QueryEngine};
use cbir_distance::Measure;
use cbir_features::normalize_l1;
use cbir_features::Pipeline;
use cbir_image::RgbImage;
use cbir_index::BatchStats;
use cbir_workload::{Corpus, CorpusSpec, Pcg32};

const K: usize = 20;
const ROUNDS: usize = 4;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (classes, per_class) = if quick { (6, 20) } else { (10, 40) };

    let corpus = Corpus::generate(CorpusSpec {
        classes,
        images_per_class: per_class,
        image_size: 64,
        jitter: 0.7, // hard corpus: lots of intra-class variation
        noise: 0.06,
        seed: 31337,
    });
    let mut db = ImageDatabase::new(Pipeline::color_histogram_default());
    for (i, img) in corpus.images.iter().enumerate() {
        db.insert_labeled(format!("img-{i}"), corpus.labels[i] as u32, img)
            .expect("insert");
    }
    let engine = QueryEngine::build(db, IndexKind::VpTree, Measure::L2).expect("engine");

    // Hard queries: blend each target-class exemplar with a distractor
    // from another class. The whole query set then runs each feedback
    // round as one batch on the engine's batched k-NN path.
    let n_queries = if quick { 12 } else { 30 };
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let mut rng = Pcg32::new(4242);
    let mut queries = Vec::with_capacity(n_queries);
    let mut targets = Vec::with_capacity(n_queries);
    for qi in 0..n_queries {
        let target = (qi % classes) as u32;
        let a = &corpus.images[target as usize * per_class + rng.below(per_class)];
        let b_class = (target as usize + 1 + rng.below(classes - 1)) % classes;
        let b = &corpus.images[b_class * per_class + rng.below(per_class)];
        let blended = RgbImage::from_fn(64, 64, |x, y| {
            if (x * 7 + y * 3) % 10 < 5 {
                a.pixel(x, y)
            } else {
                b.pixel(x, y)
            }
        });
        queries.push(engine.database().extract(&blended).expect("extract"));
        targets.push(target);
    }
    let mut per_round: Vec<Vec<f64>> = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let mut stats = BatchStats::new();
        let round = feedback_round(
            &engine,
            &queries,
            &targets,
            K,
            threads,
            &RocchioParams::default(),
            &mut stats,
        )
        .expect("feedback round");
        per_round.push(round.precision);
        queries = round.refined;
        for q in &mut queries {
            normalize_l1(q);
        }
    }

    println!(
        "T7: Rocchio relevance feedback, {classes} classes x {per_class}, {n_queries} blended queries, k={K}\n"
    );
    let mut table = Table::new(&["round", "mean P@20", "gain vs round 0"]);
    let base = mean(&per_round[0]);
    for (round, bucket) in per_round.iter().enumerate() {
        let p = mean(bucket);
        table.row(vec![
            round.to_string(),
            format!("{p:.3}"),
            format!("{:+.3}", p - base),
        ]);
    }
    table.print();
    println!("\nExpected shape: precision rises over the first rounds and");
    println!("saturates; the largest single gain is from round 0 to 1.");
}
