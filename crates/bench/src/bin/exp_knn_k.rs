//! **F4 — k-NN cost vs. k.**
//!
//! How the number of requested neighbours affects per-query distance
//! computations for each index. The paper-shape claim: cost grows mildly
//! (sub-linearly) in k for tree indexes, since the pruning bound loosens
//! only as the k-th-best distance grows.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_knn_k [--quick]`

use cbir_bench::{clustered_dataset, index_lineup, standard_queries, Table};
use cbir_core::build_index;
use cbir_distance::Measure;
use cbir_index::BatchStats;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 5_000 } else { 20_000 };
    const DIM: usize = 16;
    let ks: &[usize] = &[1, 2, 5, 10, 20, 50, 100];
    let n_queries = if quick { 15 } else { 40 };

    let dataset = clustered_dataset(n, DIM, 31);
    let queries = standard_queries(&dataset, n_queries, 13);

    println!("F4: distance computations per query vs k, N={n}, d={DIM}\n");
    let lineup = index_lineup();
    let mut headers: Vec<&str> = vec!["k"];
    let names: Vec<String> = lineup.iter().map(|k| k.name().to_string()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    let mut table = Table::new(&headers);

    // Build each index once; sweep k.
    let indexes: Vec<_> = lineup
        .iter()
        .map(|kind| build_index(kind, dataset.clone(), Measure::L2).expect("build"))
        .collect();

    for &k in ks {
        let mut cells = vec![k.to_string()];
        for index in &indexes {
            let mut stats = BatchStats::new();
            index.knn_batch(&queries, k, &mut stats);
            cells.push(format!("{} ({})", stats.p50_comps(), stats.p95_comps()));
        }
        table.row(cells);
    }
    table.print();
    println!("\nCells are per-query distance computations: p50 (p95).");
    println!("\nExpected shape: linear is flat at N; tree indexes grow slowly");
    println!("and stay well under N for all tested k.");
}
