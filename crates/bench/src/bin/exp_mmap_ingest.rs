//! **F13 — out-of-core storage: mmap cold-open, epoch snapshots, live ingest.**
//!
//! Three claims about the segment store, each gated by an assertion:
//!
//! 1. **Cold-open is ~independent of corpus size.** Opening a segment
//!    directory maps descriptors lazily and defers payload checksums, so
//!    it touches O(segments) bytes of header. Deserializing the same
//!    corpus from the classic single-file format parses and checksums
//!    every byte. The gate: mmap open must be ≥100× faster than the full
//!    deserialization (full mode only; quick-mode sizes make the ratio
//!    meaningless). Open times at ¼ and full corpus size are reported
//!    alongside to show the flat profile.
//! 2. **Bit-identical search across {RAM, mmap, mid-compaction}.** The
//!    same k-NN batch is answered by the RAM-resident engine, by the
//!    mmap-backed snapshot, by a snapshot pinned before churn (queried
//!    while inserts/deletes/compactions run underneath it, and again
//!    after its segment files have been unlinked), and by the live
//!    post-churn snapshot — every reply must match the RAM baseline down
//!    to the distance bit patterns. Churn lives in a far-away descriptor
//!    cluster so no legal snapshot can change the top-k.
//! 3. **Ingest-while-serving.** A live TCP server over the store answers
//!    pipelined k-NN streams while another connection inserts rows (and
//!    triggers inline compactions); query throughput with and without
//!    the concurrent ingest is reported, and every admitted query must
//!    be answered with a full k hits.
//!
//! Writes `results/BENCH_mmap_ingest.json`.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_mmap_ingest [--quick]`

use cbir_bench::Table;
use cbir_core::persist::{load_file, save_file};
use cbir_core::{
    CorpusSnapshot, CorpusStore, ImageDatabase, ImageMeta, IndexKind, QueryEngine, Ranked,
    ServedCorpus, StoreOptions,
};
use cbir_distance::Measure;
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_index::BatchStats;
use cbir_server::{Client, SchedulerConfig, Server};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const DIM: usize = 64;
const K: usize = 10;
const CLIENTS: usize = 4;
const WINDOW: usize = 16;

fn pipeline() -> Pipeline {
    Pipeline::new(
        DIM as u32,
        vec![FeatureSpec::ColorHistogram(Quantizer::Gray {
            bins: DIM as u32,
        })],
    )
    .expect("static pipeline")
}

fn options() -> StoreOptions {
    StoreOptions::new(IndexKind::Linear, Measure::L1)
}

fn database(n: usize) -> ImageDatabase {
    let mut db = ImageDatabase::new(pipeline());
    for (i, v) in cbir_workload::histograms(n, DIM, 1.0, 42)
        .into_iter()
        .enumerate()
    {
        db.insert_descriptor(
            ImageMeta {
                name: format!("img-{i:06}"),
                label: Some((i % 7) as u32),
            },
            v,
        )
        .expect("insert descriptor");
    }
    db
}

/// A descriptor so far from the histogram simplex (every axis ≈ 1000)
/// that it can never enter a top-k near the corpus — churn fodder.
fn far_descriptor(tag: u64) -> Vec<f32> {
    (0..DIM)
        .map(|i| 1000.0 + ((tag as usize * 31 + i * 7) % 97) as f32 / 97.0)
        .collect()
}

fn far_meta(tag: u64) -> ImageMeta {
    ImageMeta {
        name: format!("far-{tag:06}"),
        label: None,
    }
}

/// Bit-comparable result keys: (id, name, distance bits).
fn keys(results: &[Vec<Ranked>]) -> Vec<Vec<(usize, String, u32)>> {
    results
        .iter()
        .map(|hits| {
            hits.iter()
                .map(|r| (r.id, r.name.clone(), r.distance.to_bits()))
                .collect()
        })
        .collect()
}

fn snap_keys(snap: &CorpusSnapshot, queries: &[Vec<f32>]) -> Vec<Vec<(usize, String, u32)>> {
    let mut stats = BatchStats::new();
    keys(&snap.knn_batch(queries, K, 1, &mut stats).expect("snap knn"))
}

/// Median time over `iters` runs of `f`, in microseconds.
fn median_us(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Pipelined k-NN load: `CLIENTS` connections, `per_client` queries
/// each; returns queries/second. Every reply must carry exactly k hits.
fn query_load(addr: std::net::SocketAddr, streams: &[Vec<Vec<f32>>]) -> f64 {
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let barrier = Arc::new(Barrier::new(streams.len() + 1));
    let elapsed = std::thread::scope(|scope| {
        for stream in streams {
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                let (mut sent, mut recvd) = (0usize, 0usize);
                while recvd < stream.len() {
                    while sent < stream.len() && sent - recvd < WINDOW {
                        client.send_knn(&stream[sent], K, 0, 1.0).expect("send");
                        sent += 1;
                    }
                    client.flush().expect("flush");
                    let drain_to = recvd + ((sent - recvd) / 2).max(1);
                    while recvd < drain_to {
                        let hits = client.recv_hits().expect("recv");
                        assert_eq!(hits.len(), K, "short reply under ingest load");
                        recvd += 1;
                    }
                }
            });
        }
        barrier.wait();
        Instant::now()
    })
    .elapsed();
    total as f64 / elapsed.as_secs_f64()
}

/// Gate 2: every view answers the same bits. Returns the number of
/// compactions the churn phase committed.
fn assert_views_bit_identical(
    engine: &QueryEngine,
    store: &Arc<CorpusStore>,
    queries: &[Vec<f32>],
) -> u64 {
    let mut stats = BatchStats::new();
    let baseline = keys(
        &engine
            .knn_batch(queries, K, 1, &mut stats)
            .expect("ram knn"),
    );
    assert_eq!(
        snap_keys(&store.snapshot(), queries),
        baseline,
        "mmap snapshot diverges from the RAM engine"
    );

    // Pin the pre-churn view, then churn the far cluster underneath it
    // while readers race the compactions.
    let pinned = store.snapshot();
    let pinned_epoch = pinned.epoch();
    let done = AtomicBool::new(false);
    let compactions = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let mutator = scope.spawn(|| {
            let base = store.snapshot().total_rows() as u64;
            for round in 0..6u64 {
                for tag in 0..32 {
                    store
                        .insert(
                            far_meta(round * 100 + tag),
                            far_descriptor(round * 100 + tag),
                        )
                        .expect("insert far row");
                }
                let snap = store.snapshot();
                let victim = (base..snap.total_rows() as u64)
                    .find(|&id| snap.contains(id))
                    .expect("a far row to delete");
                store.delete(victim).expect("delete far row");
                store.compact().expect("compact");
                compactions.fetch_add(1, Ordering::Relaxed);
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..2 {
            let baseline = &baseline;
            let pinned = &pinned;
            let done = &done;
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    assert_eq!(
                        &snap_keys(&store.snapshot(), queries),
                        baseline,
                        "live snapshot diverged mid-compaction"
                    );
                    assert_eq!(
                        &snap_keys(pinned, queries),
                        baseline,
                        "pinned snapshot diverged under churn"
                    );
                }
            });
        }
        mutator.join().expect("mutator");
    });

    // The pinned view's files are gone by now; it must still answer.
    assert_eq!(pinned.epoch(), pinned_epoch);
    assert_eq!(
        snap_keys(&pinned, queries),
        baseline,
        "pinned snapshot diverges after its segments were unlinked"
    );
    assert_eq!(
        snap_keys(&store.snapshot(), queries),
        baseline,
        "post-churn snapshot diverges from the RAM engine"
    );
    compactions.into_inner()
}

fn build_store(dir: &Path, db: &ImageDatabase) {
    let _ = std::fs::remove_dir_all(dir);
    CorpusStore::create_from_database(dir, db, options()).expect("create store");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 20_000 } else { 200_000 };
    let per_client: usize = if quick { 30 } else { 200 };
    let ingest_rows: usize = if quick { 1_000 } else { 6_000 };
    let open_iters = if quick { 3 } else { 9 };

    let root = std::env::temp_dir().join(format!("cbir_mmap_ingest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create scratch dir");
    let file_path = root.join("corpus.cbir");
    let store_dir = root.join("corpus.seg");
    let small_dir = root.join("small.seg");

    println!(
        "F13: out-of-core storage, N={n}, d={DIM}, k={K}, {CLIENTS} clients x {per_client} \
         queries, {ingest_rows} ingested rows\n"
    );

    let db = database(n);
    save_file(&db, &file_path).expect("save single-file corpus");
    build_store(&store_dir, &db);
    build_store(&small_dir, &database(n / 4));

    // --- Gate 1: cold-open vs full deserialization. -------------------
    let open_small_us = median_us(open_iters, || {
        std::hint::black_box(CorpusStore::open(&small_dir, options()).expect("open small"));
    });
    let open_us = median_us(open_iters, || {
        std::hint::black_box(CorpusStore::open(&store_dir, options()).expect("open store"));
    });
    let load_us = median_us(open_iters.min(3), || {
        std::hint::black_box(load_file(&file_path).expect("load file"));
    });
    let open_ratio = load_us / open_us;
    let size_ratio = open_us / open_small_us;
    println!(
        "cold open: {open_us:.0}us (N={n}) vs {open_small_us:.0}us (N={}) — {size_ratio:.2}x \
         for 4x the rows",
        n / 4
    );
    println!("full deserialization: {load_us:.0}us — mmap open is {open_ratio:.0}x faster\n");

    // --- Gate 2: bit-identity across views. ---------------------------
    let queries =
        &cbir_workload::query_streams(&cbir_workload::histograms(n, DIM, 1.0, 42), 1, 24, 0.02, 17)
            [0];
    let store = CorpusStore::open(&store_dir, options()).expect("open store");
    let engine = QueryEngine::build(db, IndexKind::Linear, Measure::L1).expect("build RAM engine");
    let churn_compactions = assert_views_bit_identical(&engine, &store, queries);
    drop(engine);
    println!(
        "equivalence: RAM, mmap, pinned-under-churn, and post-churn replies bit-identical \
         across {churn_compactions} compactions"
    );

    // --- Gate 3: ingest while serving. --------------------------------
    let handle = Server::spawn_corpus(
        ServedCorpus::Live(Arc::clone(&store)),
        "127.0.0.1:0",
        SchedulerConfig::default(),
    )
    .expect("spawn live server");
    let addr = handle.local_addr();
    let streams = cbir_workload::query_streams(
        &cbir_workload::histograms(n, DIM, 1.0, 42),
        CLIENTS,
        per_client,
        0.02,
        23,
    );

    let idle_qps = query_load(addr, &streams);

    let rows_before = store.snapshot().total_rows();
    let ingest_rate = Arc::new(AtomicU64::new(0));
    let serving_qps = std::thread::scope(|scope| {
        let ingest_rate = Arc::clone(&ingest_rate);
        let ingester = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connect ingester");
            let start = Instant::now();
            for tag in 0..ingest_rows as u64 {
                let (_, _) = client
                    .insert(
                        &far_meta(10_000 + tag).name,
                        None,
                        &far_descriptor(10_000 + tag),
                    )
                    .expect("rpc insert");
            }
            ingest_rate.store(
                (ingest_rows as f64 / start.elapsed().as_secs_f64()) as u64,
                Ordering::Relaxed,
            );
        });
        let qps = query_load(addr, &streams);
        ingester.join().expect("ingester");
        qps
    });
    let ingest_rows_s = ingest_rate.load(Ordering::Relaxed);
    assert_eq!(
        store.snapshot().total_rows(),
        rows_before + ingest_rows,
        "ingested rows went missing"
    );
    let retained = serving_qps / idle_qps;
    handle.shutdown();

    let mut table = Table::new(&["phase", "q/s", "ingest rows/s", "vs idle"]);
    table.row(vec![
        "serve only".into(),
        format!("{idle_qps:.0}"),
        "-".into(),
        "1.00x".into(),
    ]);
    table.row(vec![
        "serve + ingest".into(),
        format!("{serving_qps:.0}"),
        format!("{ingest_rows_s}"),
        format!("{retained:.2}x"),
    ]);
    table.print();
    println!("\nExpected shape: queries pin an immutable epoch snapshot, so");
    println!("concurrent inserts (and the inline compactions they trigger)");
    println!("never block an in-flight scan — the read path keeps answering");
    println!("with full, bit-exact results throughout. Ingest does cost");
    println!("throughput: each insert publishes a new snapshot, but the");
    println!("chunked memtable Arc-shares frozen chunks (and their built");
    println!("indexes), so the per-publish copy is bounded by one chunk's");
    println!("active tail — contention is for cores and the publish lock,");
    println!("not for correctness or full-table copies.");

    let _ = std::fs::remove_dir_all(&root);
    if quick {
        // Quick mode exists for the gates; the reduced corpus makes the
        // open-time ratio and throughput numbers meaningless.
        println!("\nquick mode: skipping results/BENCH_mmap_ingest.json");
        return;
    }
    assert!(
        open_ratio >= 100.0,
        "mmap cold-open is only {open_ratio:.0}x faster than full deserialization (need >= 100x)"
    );
    let json = format!(
        "{{\n  \"experiment\": \"mmap_ingest\",\n  \"n\": {n},\n  \"dim\": {DIM},\n  \"k\": {K},\n  \"clients\": {CLIENTS},\n  \"per_client\": {per_client},\n  \"index\": \"linear\",\n  \"measure\": \"l1\",\n  \"exactness\": \"RAM, mmap, pinned-under-churn, and post-churn replies asserted bit-identical\",\n  \"cold_open\": {{\"open_us\": {open_us:.1}, \"open_quarter_us\": {open_small_us:.1}, \"full_load_us\": {load_us:.1}, \"open_speedup\": {open_ratio:.1}, \"size_4x_open_ratio\": {size_ratio:.2}}},\n  \"churn_compactions\": {churn_compactions},\n  \"serving\": {{\"idle_qps\": {idle_qps:.1}, \"under_ingest_qps\": {serving_qps:.1}, \"ingest_rows\": {ingest_rows}, \"ingest_rows_per_s\": {ingest_rows_s}, \"retained\": {retained:.3}}}\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_mmap_ingest.json", json).expect("write results");
    println!("\nwrote results/BENCH_mmap_ingest.json");
}
