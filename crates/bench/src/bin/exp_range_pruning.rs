//! **F3 — range-search pruning vs. search radius.**
//!
//! For radius thresholds at increasing quantiles of the pairwise-distance
//! distribution: how much of the database the metric trees avoid
//! comparing, and how many results qualify. The paper-shape claim:
//! triangle-inequality pruning is dramatic at selective radii and
//! evaporates as the radius approaches the data diameter.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_range_pruning [--quick]`

use cbir_bench::{clustered_dataset, standard_queries, Table};
use cbir_core::{build_index, IndexKind};
use cbir_distance::{l2, Measure};
use cbir_index::{BatchStats, SplitMix64};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 5_000 } else { 20_000 };
    const DIM: usize = 16;
    let n_queries = if quick { 15 } else { 40 };

    let dataset = clustered_dataset(n, DIM, 11);
    let queries = standard_queries(&dataset, n_queries, 5);

    // Radius schedule from sampled pairwise-distance quantiles.
    let mut rng = SplitMix64::new(77);
    let mut sample: Vec<f32> = (0..4000)
        .map(|_| {
            let a = rng.next_below(n);
            let b = rng.next_below(n);
            l2(dataset.vector(a), dataset.vector(b))
        })
        .collect();
    sample.sort_by(f32::total_cmp);
    let quantiles = [0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.9];
    let radii: Vec<f32> = quantiles
        .iter()
        .map(|&q| sample[((sample.len() - 1) as f64 * q) as usize])
        .collect();

    println!("F3: range-search pruning vs radius, N={n}, d={DIM}\n");
    let mut table = Table::new(&[
        "quantile",
        "radius",
        "index",
        "mean-hits",
        "comps-p50",
        "comps-p95",
        "pruned-frac",
    ]);
    let kinds = [
        IndexKind::VpTree,
        IndexKind::Antipole { diameter: None },
        IndexKind::KdTree,
        IndexKind::RStar,
    ];
    for (q, r) in quantiles.iter().zip(&radii) {
        for kind in &kinds {
            let index = build_index(kind, dataset.clone(), Measure::L2).expect("build");
            let mut stats = BatchStats::new();
            let hits: usize = index
                .range_batch(&queries, *r, &mut stats)
                .iter()
                .map(Vec::len)
                .sum();
            table.row(vec![
                format!("{q}"),
                format!("{r:.2}"),
                kind.name().to_string(),
                format!("{:.1}", hits as f64 / queries.len() as f64),
                stats.p50_comps().to_string(),
                stats.p95_comps().to_string(),
                format!("{:.3}", 1.0 - stats.mean_comps() / n as f64),
            ]);
        }
    }
    table.print();
    println!("\nExpected shape: pruned fraction near 1.0 at selective radii,");
    println!("collapsing toward 0 as the radius reaches the bulk of the");
    println!("distance distribution (quantile 0.5 and beyond).");
}
