//! **T1b — shared-intermediate extraction throughput.**
//!
//! The extraction planner ([`cbir_features::ExtractContext`]) computes
//! every shared intermediate (canonical resize, grayscale, Sobel field,
//! quantizer plane, foreground mask, salience DT, integral image) exactly
//! once per image and reuses an [`cbir_features::ExtractScratch`] across
//! images, so steady-state extraction allocates nothing. This experiment
//! measures what that buys: median per-image latency of the naive
//! per-family reference path (`Pipeline::extract_naive`) vs. the planner
//! with a reused scratch (`Pipeline::extract_into`), plus parallel batch
//! throughput (`Pipeline::extract_batch`) at 1 and all-core threads,
//! swept over canonical sizes 64 / 128 / 256.
//!
//! Before any timing, every path — naive, planner (fresh and reused
//! scratch), and batch at both thread counts — is asserted bit-identical
//! on every source image. At canonical 64 (the paper's operating point)
//! the full run asserts the planner is at least **2×** faster than the
//! naive path.
//!
//! Writes `results/BENCH_extraction_throughput.json`.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_extraction_throughput [--quick]`

use cbir_bench::{fmt_ms, time_median, Table};
use cbir_features::{ExtractScratch, FeatureSpec, Pipeline, Quantizer};
use cbir_image::RgbImage;
use cbir_workload::{Corpus, CorpusSpec};
use std::time::Duration;

/// The `Pipeline::full_default` spec lineup at an arbitrary canonical size.
fn full_pipeline(canonical: u32) -> Pipeline {
    Pipeline::new(
        canonical,
        vec![
            FeatureSpec::ColorHistogram(Quantizer::hsv_default()),
            FeatureSpec::Correlogram {
                quantizer: Quantizer::rgb_compact(),
                distances: vec![1, 3, 5, 7],
            },
            FeatureSpec::Glcm { levels: 16 },
            FeatureSpec::Tamura,
            FeatureSpec::Wavelet { levels: 3 },
            FeatureSpec::EdgeOrientation { bins: 16 },
            FeatureSpec::EdgeDensityGrid {
                grid: 4,
                threshold: 10.0,
            },
            FeatureSpec::HuMoments,
            FeatureSpec::ShapeSummary,
            FeatureSpec::RegionShape,
        ],
    )
    .expect("static pipeline")
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn per_image(total: Duration, n: usize) -> Duration {
    total / n as u32
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[u32] = if quick { &[64] } else { &[64, 128, 256] };
    let n_images: usize = if quick { 4 } else { 8 };
    let iters = if quick { 1 } else { 5 };
    let max_threads = std::thread::available_parallelism().map_or(1, |t| t.get());

    println!(
        "T1b: naive per-family extraction vs shared-intermediate planner, \
         {n_images} images/size, full_default spec lineup\n"
    );
    let mut table = Table::new(&[
        "canonical",
        "naive ms/img",
        "planner ms/img",
        "speedup",
        "batch@1T ms/img",
        "batch@maxT ms/img",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut speedup_at_64 = 0.0f64;

    for &canonical in sizes {
        let pipeline = full_pipeline(canonical);
        // Source images 1.5x the canonical edge so the resize stage does
        // real work, like ingest of externally sized images would.
        let corpus = Corpus::generate(CorpusSpec {
            classes: 4,
            images_per_class: n_images.div_ceil(4),
            image_size: canonical * 3 / 2,
            ..Default::default()
        });
        let images: Vec<RgbImage> = corpus.images.into_iter().take(n_images).collect();
        let refs: Vec<&RgbImage> = images.iter().collect();

        // Exactness first: every path must reproduce the naive per-family
        // reference bit-for-bit before its speed means anything.
        let naive_out: Vec<Vec<f32>> = refs
            .iter()
            .map(|img| pipeline.extract_naive(img).expect("naive extraction"))
            .collect();
        let mut scratch = ExtractScratch::new();
        let mut buf = Vec::new();
        for (img, want) in refs.iter().zip(&naive_out) {
            let fresh = pipeline.extract(img).expect("planner extraction");
            assert_eq!(
                bits(&fresh),
                bits(want),
                "canonical {canonical}: extract diverges from extract_naive"
            );
            pipeline
                .extract_into(img, &mut scratch, &mut buf)
                .expect("planner extraction (reused scratch)");
            assert_eq!(
                bits(&buf),
                bits(want),
                "canonical {canonical}: reused scratch diverges from extract_naive"
            );
        }
        for threads in [1, max_threads] {
            let batched = pipeline.extract_batch(&refs, threads).expect("batch");
            for (got, want) in batched.iter().zip(&naive_out) {
                assert_eq!(
                    bits(got),
                    bits(want),
                    "canonical {canonical}: extract_batch@{threads} diverges"
                );
            }
        }

        // Warm the scratch to its high-water mark, then time.
        let naive = per_image(
            time_median(iters, || {
                for img in &refs {
                    std::hint::black_box(pipeline.extract_naive(img).unwrap());
                }
            }),
            refs.len(),
        );
        let planner = per_image(
            time_median(iters, || {
                for img in &refs {
                    pipeline.extract_into(img, &mut scratch, &mut buf).unwrap();
                    std::hint::black_box(&buf);
                }
            }),
            refs.len(),
        );
        let batch_1 = per_image(
            time_median(iters, || {
                std::hint::black_box(pipeline.extract_batch(&refs, 1).unwrap());
            }),
            refs.len(),
        );
        let batch_max = per_image(
            time_median(iters, || {
                std::hint::black_box(pipeline.extract_batch(&refs, max_threads).unwrap());
            }),
            refs.len(),
        );

        let speedup = naive.as_secs_f64() / planner.as_secs_f64();
        if canonical == 64 {
            speedup_at_64 = speedup;
        }
        table.row(vec![
            canonical.to_string(),
            fmt_ms(naive),
            fmt_ms(planner),
            format!("{speedup:.2}x"),
            fmt_ms(batch_1),
            fmt_ms(batch_max),
        ]);
        json_rows.push(format!(
            "    {{\"canonical\": {canonical}, \"naive_ms\": {}, \"planner_ms\": {}, \
             \"speedup\": {speedup:.2}, \"batch_1t_ms\": {}, \"batch_maxt_ms\": {}}}",
            fmt_ms(naive),
            fmt_ms(planner),
            fmt_ms(batch_1),
            fmt_ms(batch_max),
        ));
    }

    table.print();
    println!("\nExpected shape: the planner beats the naive path by sharing the");
    println!("resize, grayscale, Sobel field, quantizer plane, mask, and DT");
    println!("across families instead of recomputing them per family; batch at");
    println!("max threads divides per-image latency by ~core count on top.");

    if !quick {
        assert!(
            speedup_at_64 >= 2.0,
            "planner speedup at canonical 64 is {speedup_at_64:.2}x, expected >= 2x"
        );
        println!("\nspeedup at canonical 64: {speedup_at_64:.2}x (>= 2x requirement holds)");
    }

    if quick {
        // Quick mode exists for the bit-identity assertions; don't clobber
        // committed full-mode numbers with 1-iteration timings.
        println!("\nquick mode: skipping results/BENCH_extraction_throughput.json");
        return;
    }
    let json = format!(
        "{{\n  \"experiment\": \"extraction_throughput\",\n  \"images_per_size\": {n_images},\n  \"iters\": {iters},\n  \"max_threads\": {max_threads},\n  \"exactness\": \"planner, reused-scratch, and batch paths asserted bit-identical to extract_naive\",\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_extraction_throughput.json", json).expect("write results");
    println!("\nwrote results/BENCH_extraction_throughput.json");
}
