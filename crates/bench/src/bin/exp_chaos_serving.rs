//! **F16 — graceful degradation under chaos: the router's failure
//! drills.**
//!
//! A 2-shard x 2-replica tier is pushed through four wire-level fault
//! scenarios, each injected by the in-tree [`ChaosProxy`] sitting in
//! front of selected replicas, each with a hard gate:
//!
//! * **Slow replica, hedged requests.** Every shard's primary sits
//!   behind a 60ms delay proxy. Without hedging the scatter inherits
//!   the stall; with `--hedge-ms`-style hedging (p99-derived delay,
//!   first valid reply wins) the tail must collapse: **hedging cuts
//!   client p99 by >= 2x**, and the hedges fired/won counters move.
//! * **Flapping replica, probe-driven rejoin.** Shard 0's primary
//!   drops every connection for a stretch, then recovers. With passive
//!   cooldown pushed out to an hour, only the active health prober can
//!   bring it back: the gate is **zero failed queries across the flap**
//!   plus **>= 1 recorded probe-driven rejoin**.
//! * **Full shard loss, partial results.** Both replicas of shard 1
//!   are killed outright. With partial-results serving on, every query
//!   must come back a **well-formed degraded reply**: wire status
//!   `HitsPartial`, coverage 1/2, hits bit-identical to what the
//!   surviving shard's backend answers (ids mapped through the plan) —
//!   and **zero errors**.
//! * **Torn-frame storm.** Every primary tears its replies mid-frame
//!   at a seeded prefix. The router must absorb the torn reads and
//!   fail over: **zero corrupt replies**, checked byte-for-byte against
//!   a single node serving the union corpus.
//!
//! Writes `results/BENCH_chaos_serving.json` (quick mode included —
//! the gates are correctness gates, not throughput ratios).
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_chaos_serving [--quick]`

use cbir_core::{
    split_database, ImageDatabase, ImageMeta, IndexKind, QueryEngine, ShardPlan, ShardScheme,
};
use cbir_distance::Measure;
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_router::{Router, RouterConfig, RouterHandle};
use cbir_server::chaosnet::{ChaosHandle, ChaosProxy, WireMode};
use cbir_server::protocol::{encode_request, read_frame, write_frame, Request};
use cbir_server::{Client, SchedulerConfig, Server, ServerHandle};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const DIM: usize = 64;
const K: usize = 10;
const SHARDS: usize = 2;

/// Union corpus with bit-exact duplicate rows so merge tie-breaks stay
/// load-bearing even while shards disappear.
fn union_db(n: usize) -> ImageDatabase {
    let pipeline = Pipeline::new(
        DIM as u32,
        vec![FeatureSpec::ColorHistogram(Quantizer::Gray {
            bins: DIM as u32,
        })],
    )
    .expect("static pipeline");
    let mut db = ImageDatabase::new(pipeline);
    for (i, v) in cbir_workload::duplicated_histograms(n, DIM, 1.0, 3, 0xF16)
        .into_iter()
        .enumerate()
    {
        db.insert_descriptor(
            ImageMeta {
                name: format!("img-{i:06}"),
                label: Some((i % 7) as u32),
            },
            v,
        )
        .expect("insert descriptor");
    }
    db
}

fn spawn_backend(db: ImageDatabase) -> ServerHandle {
    let engine = QueryEngine::build(db, IndexKind::Linear, Measure::L1).expect("build engine");
    let config = SchedulerConfig {
        exec_threads: 1,
        ..SchedulerConfig::default()
    };
    Server::spawn(engine, "127.0.0.1:0", config).expect("spawn backend")
}

/// The drill topology: 2 shards x 2 replicas, every shard's **primary**
/// reached through its own [`ChaosProxy`] (initially `Pass`), the backup
/// dialed directly. Returns `(backends[shard][replica], proxies[shard],
/// router)`.
fn spawn_chaos_tier(
    union: &ImageDatabase,
    config: RouterConfig,
) -> (Vec<Vec<ServerHandle>>, Vec<ChaosHandle>, RouterHandle) {
    let plan = ShardPlan::new(ShardScheme::Mod, union.dim(), union.len() as u64, SHARDS)
        .expect("shard plan");
    let parts = split_database(union, &plan).expect("split database");
    let backends: Vec<Vec<ServerHandle>> = parts
        .into_iter()
        .map(|part| (0..2).map(|_| spawn_backend(part.clone())).collect())
        .collect();
    let proxies: Vec<ChaosHandle> = backends
        .iter()
        .map(|group| {
            ChaosProxy::spawn(
                group[0].local_addr().to_string(),
                WireMode::Pass,
                "127.0.0.1:0",
            )
            .expect("spawn chaos proxy")
        })
        .collect();
    let addrs: Vec<Vec<String>> = backends
        .iter()
        .zip(&proxies)
        .map(|(group, proxy)| {
            vec![
                proxy.local_addr().to_string(),
                group[1].local_addr().to_string(),
            ]
        })
        .collect();
    let router = Router::spawn(plan, addrs, "127.0.0.1:0", config).expect("spawn router");
    (backends, proxies, router)
}

fn shutdown_tier(
    backends: Vec<Vec<ServerHandle>>,
    proxies: Vec<ChaosHandle>,
    router: RouterHandle,
) {
    router.shutdown();
    for proxy in proxies {
        proxy.shutdown();
    }
    for group in backends {
        for b in group {
            b.shutdown();
        }
    }
}

/// Send one encoded request frame on a fresh connection, return the raw
/// reply payload bytes.
fn raw_call(addr: SocketAddr, req: &Request) -> Vec<u8> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    write_frame(&mut writer, &encode_request(req)).expect("write frame");
    read_frame(&mut BufReader::new(stream))
        .expect("read frame")
        .expect("reply payload")
}

/// Client-observed p99 (microseconds) over `queries` k-NN calls.
fn measure_p99(addr: SocketAddr, queries: &[Vec<f32>]) -> u64 {
    let mut client = Client::connect(addr).expect("connect");
    let mut lat_us: Vec<u64> = queries
        .iter()
        .map(|q| {
            let start = Instant::now();
            let hits = client.knn(q, K, 0, 1.0).expect("knn");
            std::hint::black_box(&hits);
            start.elapsed().as_micros() as u64
        })
        .collect();
    if std::env::var("CHAOS_DEBUG").is_ok() {
        eprintln!("latencies: {lat_us:?}");
    }
    lat_us.sort_unstable();
    lat_us[(lat_us.len() * 99) / 100]
}

/// Scenario 1: every primary is 60ms slow. Hedging must collapse the
/// tail by >= 2x, and the hedge counters must move.
fn run_hedge_leg(union: &ImageDatabase, queries: &[Vec<f32>]) -> (u64, u64, u64, u64) {
    let delayed = |config: RouterConfig| {
        let (backends, proxies, router) = spawn_chaos_tier(union, config);
        for p in &proxies {
            p.set_mode(WireMode::Delay(Duration::from_millis(60)));
        }
        (backends, proxies, router)
    };

    let (backends, proxies, router) = delayed(RouterConfig::default());
    let p99_plain = measure_p99(router.local_addr(), queries);
    shutdown_tier(backends, proxies, router);

    let before = cbir_obs::snapshot().router_tier;
    let (backends, proxies, router) = delayed(RouterConfig {
        hedge: Some(Duration::from_millis(5)),
        ..RouterConfig::default()
    });
    let p99_hedged = measure_p99(router.local_addr(), queries);
    shutdown_tier(backends, proxies, router);
    let after = cbir_obs::snapshot().router_tier;

    (
        p99_plain,
        p99_hedged,
        after.hedges_fired - before.hedges_fired,
        after.hedges_won - before.hedges_won,
    )
}

/// Sum of probe-driven rejoins recorded for `shard` across the obs
/// replica slots.
fn probe_rejoins_of(shard: u32) -> u64 {
    cbir_obs::snapshot()
        .router
        .iter()
        .filter(|r| r.shard == shard)
        .map(|r| r.probe_rejoins)
        .sum()
}

/// Scenario 2: shard 0's primary flaps (drops every connection, then
/// recovers). Passive cooldown is an hour, so only the prober can bring
/// it back. Returns (failed queries, probe rejoins observed).
fn run_flap_leg(union: &ImageDatabase, queries: &[Vec<f32>]) -> (u64, u64) {
    let (backends, proxies, router) = spawn_chaos_tier(
        union,
        RouterConfig {
            probe_interval: Some(Duration::from_millis(25)),
            cooldown: Duration::from_secs(3600),
            ..RouterConfig::default()
        },
    );
    let addr = router.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let mut failed = 0u64;
    let mut run = |queries: &[Vec<f32>], failed: &mut u64| {
        for q in queries {
            match client.knn(q, K, 0, 1.0) {
                Ok(hits) => {
                    std::hint::black_box(&hits);
                }
                Err(_) => *failed += 1,
            }
        }
    };

    let third = queries.len() / 3;
    run(&queries[..third], &mut failed);
    let rejoins_before = probe_rejoins_of(0);
    // Flap down: every connection through the proxy dies immediately.
    proxies[0].set_mode(WireMode::Drop);
    run(&queries[third..2 * third], &mut failed);
    // Flap up: only the prober may notice (cooldown is an hour).
    proxies[0].set_mode(WireMode::Pass);
    let deadline = Instant::now() + Duration::from_secs(10);
    while probe_rejoins_of(0) == rejoins_before && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    let rejoins = probe_rejoins_of(0) - rejoins_before;
    run(&queries[2 * third..], &mut failed);
    shutdown_tier(backends, proxies, router);
    (failed, rejoins)
}

/// Scenario 3: both replicas of shard 1 die. With partial results on,
/// every reply must be well-formed degraded output: `HitsPartial` on the
/// wire, 1/2 coverage, hits bit-identical to the surviving shard's own
/// answer. Returns (degraded replies, errors).
fn run_shard_loss_leg(union: &ImageDatabase, queries: &[Vec<f32>]) -> (u64, u64) {
    let plan = ShardPlan::new(ShardScheme::Mod, union.dim(), union.len() as u64, SHARDS)
        .expect("shard plan");
    let (mut backends, proxies, router) = spawn_chaos_tier(
        union,
        RouterConfig {
            allow_partial: true,
            cooldown: Duration::from_millis(100),
            ..RouterConfig::default()
        },
    );
    let addr = router.local_addr();
    let survivor = backends[0][0].local_addr();
    // Kill shard 1 outright: both replicas, listener and all.
    for b in backends.pop().expect("shard 1 group") {
        b.shutdown();
    }

    let mut client = Client::connect(addr).expect("connect");
    let mut reference = Client::connect(survivor).expect("connect survivor");
    let (mut degraded, mut errors) = (0u64, 0u64);
    for q in queries {
        let reply = match client.knn_detailed(q, K, 0, 1.0) {
            Ok(r) => r,
            Err(_) => {
                errors += 1;
                continue;
            }
        };
        assert!(reply.degraded, "shard loss must be reported as degraded");
        assert_eq!(
            (reply.shards_answered, reply.shards_total),
            (1, SHARDS as u32),
            "coverage accounting"
        );
        // The degraded hits are exactly the surviving shard's answer
        // with ids mapped through the plan — bit-for-bit.
        let want = reference.knn(q, K, 0, 1.0).expect("survivor knn");
        assert_eq!(reply.hits.len(), want.len());
        for (got, local) in reply.hits.iter().zip(&want) {
            let global = plan.to_global(0, local.id).expect("map id");
            assert_eq!(got.id, global, "degraded hit id");
            assert_eq!(
                got.distance.to_bits(),
                local.distance.to_bits(),
                "degraded hit distance bits"
            );
        }
        degraded += 1;
    }
    // And on the wire it is the HitsPartial status, not a bare Hits.
    let raw = raw_call(
        addr,
        &Request::Knn {
            k: K as u32,
            deadline_us: 0,
            recall_target: 1.0,
            descriptor: queries[0].clone(),
        },
    );
    assert_eq!(raw[0], 13, "degraded replies use the HitsPartial status");
    shutdown_tier(backends, proxies, router);
    (degraded, errors)
}

/// Scenario 4: every primary tears its replies mid-frame at a seeded
/// prefix. Gate: zero corrupt replies — every routed reply byte-equal
/// to the single union node's. Returns the number of replies checked.
fn run_torn_leg(union: &ImageDatabase, queries: &[Vec<f32>], single_addr: SocketAddr) -> u64 {
    let (backends, proxies, router) = spawn_chaos_tier(
        union,
        RouterConfig {
            cooldown: Duration::from_millis(50),
            ..RouterConfig::default()
        },
    );
    for (s, p) in proxies.iter().enumerate() {
        p.set_mode(WireMode::TornReply {
            seed: 0xF16_0000 + s as u64,
            max_prefix: 200,
        });
    }
    let addr = router.local_addr();
    let mut checked = 0u64;
    for (i, q) in queries.iter().enumerate() {
        let req = Request::Knn {
            k: (K + i % 5) as u32,
            deadline_us: 0,
            recall_target: 1.0,
            descriptor: q.clone(),
        };
        let want = raw_call(single_addr, &req);
        let got = raw_call(addr, &req);
        assert_eq!(got, want, "reply bytes corrupted under torn-frame storm");
        checked += 1;
    }
    shutdown_tier(backends, proxies, router);
    checked
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 2_000 } else { 20_000 };
    let per_leg: usize = if quick { 36 } else { 120 };
    let union = union_db(n);
    let queries: Vec<Vec<f32>> = cbir_workload::duplicated_histograms(n, DIM, 1.0, 3, 0x5EED)
        .into_iter()
        .take(per_leg)
        .collect();

    println!(
        "F16: graceful degradation under chaos, N={n}, d={DIM}, k={K}, {SHARDS} shards x 2 \
         replicas, {per_leg} queries per leg\n"
    );

    let (p99_plain, p99_hedged, hedges_fired, hedges_won) = run_hedge_leg(&union, &queries);
    let tail_cut = p99_plain as f64 / p99_hedged.max(1) as f64;
    println!(
        "  hedge: slow primaries p99 {p99_plain}us -> hedged p99 {p99_hedged}us \
         ({tail_cut:.1}x cut; {hedges_fired} fired, {hedges_won} won)"
    );
    assert!(
        tail_cut >= 2.0,
        "hedging cut p99 only {tail_cut:.2}x (need >= 2x)"
    );
    assert!(hedges_fired > 0, "no hedges fired against 60ms primaries");
    assert!(hedges_won > 0, "no hedge ever won against 60ms primaries");

    let (flap_failed, rejoins) = run_flap_leg(&union, &queries);
    println!(
        "  flap: {flap_failed} failed queries across the flap, {rejoins} probe-driven rejoin(s)"
    );
    assert_eq!(flap_failed, 0, "a flapping replica must be invisible");
    assert!(rejoins >= 1, "recovery must come from the health prober");

    let (degraded, loss_errors) = run_shard_loss_leg(&union, &queries);
    println!(
        "  shard loss: {degraded}/{per_leg} well-formed degraded replies (coverage 1/2), \
         {loss_errors} errors"
    );
    assert_eq!(loss_errors, 0, "full shard loss must degrade, not error");
    assert_eq!(degraded as usize, per_leg, "every reply must be degraded");

    let single = spawn_backend(union.clone());
    let torn_checked = run_torn_leg(&union, &queries, single.local_addr());
    single.shutdown();
    println!("  torn storm: {torn_checked} replies checked, zero corrupt\n");

    let json = format!(
        "{{\n  \"experiment\": \"chaos_serving\",\n  \"n\": {n},\n  \"dim\": {DIM},\n  \
         \"k\": {K},\n  \"shards\": {SHARDS},\n  \"replicas\": 2,\n  \
         \"queries_per_leg\": {per_leg},\n  \"quick\": {quick},\n  \
         \"hedge\": {{\"p99_us_plain\": {p99_plain}, \"p99_us_hedged\": {p99_hedged}, \
         \"tail_cut\": {tail_cut:.2}, \"hedges_fired\": {hedges_fired}, \
         \"hedges_won\": {hedges_won}}},\n  \
         \"flap\": {{\"failed_queries\": {flap_failed}, \"probe_rejoins\": {rejoins}}},\n  \
         \"shard_loss\": {{\"degraded_replies\": {degraded}, \"errors\": {loss_errors}, \
         \"coverage\": \"1/2\"}},\n  \
         \"torn_storm\": {{\"replies_checked\": {torn_checked}, \"corrupt_replies\": 0}}\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_chaos_serving.json", json).expect("write results");
    println!("wrote results/BENCH_chaos_serving.json");
}
