//! **T1 — feature-extraction throughput.**
//!
//! Milliseconds per image for each feature family at several canonical
//! image sizes. The paper-shape claim: histogram-family features are
//! linear in pixels and cheap; the correlogram is the most expensive
//! (pixels × ring sizes); everything is fast enough to index thousands of
//! images per minute on one core.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_extraction [--quick]`

use cbir_bench::{fmt_ms, time_median, Table};
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_workload::{Corpus, CorpusSpec};

fn spec_lineup() -> Vec<(&'static str, FeatureSpec)> {
    vec![
        (
            "color-hist (HSV 256)",
            FeatureSpec::ColorHistogram(Quantizer::hsv_default()),
        ),
        ("color-moments", FeatureSpec::ColorMoments),
        (
            "correlogram (64c x 4d)",
            FeatureSpec::Correlogram {
                quantizer: Quantizer::rgb_compact(),
                distances: vec![1, 3, 5, 7],
            },
        ),
        ("glcm (16 levels)", FeatureSpec::Glcm { levels: 16 }),
        ("tamura", FeatureSpec::Tamura),
        ("wavelet (3 levels)", FeatureSpec::Wavelet { levels: 3 }),
        (
            "edge-orient (16)",
            FeatureSpec::EdgeOrientation { bins: 16 },
        ),
        (
            "edge-grid (4x4)",
            FeatureSpec::EdgeDensityGrid {
                grid: 4,
                threshold: 10.0,
            },
        ),
        ("hu-moments", FeatureSpec::HuMoments),
        ("shape-summary", FeatureSpec::ShapeSummary),
        ("dt-hist (16)", FeatureSpec::DtHistogram { bins: 16 }),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[u32] = if quick { &[64, 128] } else { &[64, 128, 256] };
    let per_size_images = if quick { 4 } else { 8 };

    println!("T1: feature extraction cost (ms/image) vs canonical image size\n");
    let mut headers = vec!["feature".to_string(), "dim".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{s}px")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for (label, spec) in spec_lineup() {
        let mut cells = vec![label.to_string(), spec.dim().to_string()];
        for &size in sizes {
            let corpus = Corpus::generate(CorpusSpec {
                classes: 2,
                images_per_class: per_size_images / 2,
                image_size: size,
                jitter: 0.5,
                noise: 0.05,
                seed: size as u64,
            });
            let pipeline =
                Pipeline::new(size, vec![spec.clone()]).expect("spec valid at this size");
            let med = time_median(3, || {
                for img in &corpus.images {
                    std::hint::black_box(pipeline.extract(img).expect("extract"));
                }
            });
            cells.push(fmt_ms(med / corpus.len() as u32));
        }
        table.row(cells);
    }
    table.print();
    println!("\nExpected shape: costs grow ~4x per size doubling (linear in");
    println!("pixels); the correlogram is the most expensive family, the");
    println!("scalar statistics (moments, tamura, glcm) the cheapest.");
}
