//! **F15 — scatter-gather scaling and failover: the router tier.**
//!
//! The union corpus (synthetic histograms with deliberate bit-exact
//! duplicate rows, so distance ties cross shard boundaries) is split by
//! the deterministic [`ShardPlan`] arithmetic and served three ways: one
//! node, 2 shards, 4 shards — each shard a single-threaded linear-scan
//! backend behind the router. Per-query work is a full scan of the
//! shard, so the tier's promise is concrete: 4 shards scan a quarter of
//! the rows each, in parallel.
//!
//! Two scaling gates, because co-located shards are not a cluster:
//!
//! * **Per-node work** (asserted everywhere): the per-backend distance
//!   computations one query costs must drop >= 3x from 1 shard to 4 —
//!   measured from the aggregated serving counters, exactly the
//!   quantity a deployment's per-node latency and capacity follow.
//! * **Wall-clock QPS** (asserted on machines with >= 4 cores): >= 3x
//!   aggregate throughput at 4 shards vs 1. Backend processes sharing
//!   one core serialize on the CPU and on memory bandwidth, so on
//!   smaller machines the ratio is reported but not gated.
//!
//! Before any timing, router replies are asserted **frame-level
//! bit-identical** to the single node serving the union corpus — the
//! raw reply payload bytes, not a parsed comparison — across a request
//! mix of tie-heavy k-NN, k > corpus, range, knn-by-id, point reads,
//! and ping.
//!
//! A separate failover leg runs 2 shards x 2 replicas, kills shard 0's
//! primary outright mid-run, and requires **zero failed queries**: the
//! router retries the failover-classified errors on the sibling replica
//! and the kill is visible only in the per-replica observability
//! counters (failovers > 0), never in a client-facing error or a
//! changed reply byte.
//!
//! Writes `results/BENCH_router_scaling.json`.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_router_scaling [--quick]`

use cbir_core::{
    split_database, ImageDatabase, ImageMeta, IndexKind, QueryEngine, ShardPlan, ShardScheme,
};
use cbir_distance::Measure;
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_router::{Router, RouterConfig, RouterHandle};
use cbir_server::protocol::{encode_request, read_frame, write_frame, Request};
use cbir_server::{Client, SchedulerConfig, Server, ServerHandle};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const DIM: usize = 64;
const K: usize = 10;
const CLIENTS: usize = 8;

/// The union corpus: normalized histograms where every third row is a
/// bit-exact duplicate of an earlier row, so top-k boundaries land on
/// distance ties and the merge tie-break is load-bearing.
fn union_db(n: usize) -> ImageDatabase {
    let pipeline = Pipeline::new(
        DIM as u32,
        vec![FeatureSpec::ColorHistogram(Quantizer::Gray {
            bins: DIM as u32,
        })],
    )
    .expect("static pipeline");
    let mut db = ImageDatabase::new(pipeline);
    for (i, v) in cbir_workload::duplicated_histograms(n, DIM, 1.0, 3, 0xF15)
        .into_iter()
        .enumerate()
    {
        db.insert_descriptor(
            ImageMeta {
                name: format!("img-{i:06}"),
                label: Some((i % 7) as u32),
            },
            v,
        )
        .expect("insert descriptor");
    }
    db
}

/// One shard backend: single exec thread, linear scan — per-query cost
/// is proportional to the shard's row count, which is exactly the cost
/// model sharding divides.
fn spawn_backend(db: ImageDatabase) -> ServerHandle {
    let engine = QueryEngine::build(db, IndexKind::Linear, Measure::L1).expect("build engine");
    let config = SchedulerConfig {
        exec_threads: 1,
        ..SchedulerConfig::default()
    };
    Server::spawn(engine, "127.0.0.1:0", config).expect("spawn backend")
}

/// Split the union into `shards` parts with `replicas` backends each and
/// put a router in front. Returns the backend handles (outer index =
/// shard) and the router.
fn spawn_tier(
    union: &ImageDatabase,
    shards: usize,
    replicas: usize,
) -> (Vec<Vec<ServerHandle>>, RouterHandle) {
    let plan = ShardPlan::new(ShardScheme::Mod, union.dim(), union.len() as u64, shards)
        .expect("shard plan");
    let parts = split_database(union, &plan).expect("split database");
    let backends: Vec<Vec<ServerHandle>> = parts
        .into_iter()
        .map(|part| (0..replicas).map(|_| spawn_backend(part.clone())).collect())
        .collect();
    let addrs: Vec<Vec<String>> = backends
        .iter()
        .map(|group| group.iter().map(|b| b.local_addr().to_string()).collect())
        .collect();
    let router = Router::spawn(
        plan,
        addrs,
        "127.0.0.1:0",
        RouterConfig {
            cooldown: Duration::from_millis(250),
            ..RouterConfig::default()
        },
    )
    .expect("spawn router");
    (backends, router)
}

/// Send one encoded request frame, return the raw reply payload bytes.
fn raw_call(addr: SocketAddr, req: &Request) -> Vec<u8> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    write_frame(&mut writer, &encode_request(req)).expect("write frame");
    read_frame(&mut BufReader::new(stream))
        .expect("read frame")
        .expect("reply payload")
}

/// The bit-identity gate: the raw reply bytes from `router_addr` must
/// equal, byte for byte, what the single node answers for a request mix
/// covering tie-heavy k-NN, k > corpus, range, knn-by-id, point reads,
/// and ping.
fn assert_bit_identity(router_addr: SocketAddr, single_addr: SocketAddr, union: &ImageDatabase) {
    let n = union.len();
    let q_dup = union.descriptor(3).expect("descriptor").to_vec();
    let q_other = union.descriptor(n - 1).expect("descriptor").to_vec();
    let mix = vec![
        Request::Knn {
            k: K as u32,
            deadline_us: 0,
            recall_target: 1.0,
            descriptor: q_dup.clone(),
        },
        Request::Knn {
            k: (n + 50) as u32,
            deadline_us: 0,
            recall_target: 1.0,
            descriptor: q_other.clone(),
        },
        Request::Range {
            radius: 0.4,
            deadline_us: 0,
            descriptor: q_dup,
        },
        Request::KnnById {
            k: K as u32,
            deadline_us: 0,
            recall_target: 1.0,
            id: (n / 2) as u64,
        },
        Request::GetDescriptor { id: 7 },
        Request::Ping,
    ];
    for req in &mix {
        let want = raw_call(single_addr, req);
        let got = raw_call(router_addr, req);
        assert_eq!(got, want, "reply bytes diverged for {req:?}");
    }
}

/// Drive `CLIENTS` concurrent synchronous clients against `addr`,
/// return queries/second. Synchronous (one in-flight request per
/// connection) because the router scatters each request across every
/// shard — concurrency comes from the client count.
fn run_load(addr: SocketAddr, streams: &[Vec<Vec<f32>>]) -> f64 {
    let total: usize = streams.iter().map(Vec::len).sum();
    let barrier = Arc::new(Barrier::new(streams.len() + 1));
    let elapsed = std::thread::scope(|scope| {
        for stream in streams {
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                for q in stream {
                    let hits = client.knn(q, K, 0, 1.0).expect("knn");
                    std::hint::black_box(&hits);
                }
            });
        }
        barrier.wait();
        Instant::now()
    })
    .elapsed();
    total as f64 / elapsed.as_secs_f64()
}

/// The failover leg: 2 shards x 2 replicas, kill shard 0's primary
/// while the load is in flight. Every query must succeed; the kill may
/// only show up in the router's per-replica counters.
fn run_failover_leg(
    union: &ImageDatabase,
    streams: &[Vec<Vec<f32>>],
    single_addr: SocketAddr,
) -> (u64, u64) {
    let (mut backends, router) = spawn_tier(union, 2, 2);
    let addr = router.local_addr();
    assert_bit_identity(addr, single_addr, union);

    let failed = AtomicU64::new(0);
    let answered = AtomicU64::new(0);
    let barrier = Arc::new(Barrier::new(streams.len() + 1));
    std::thread::scope(|scope| {
        for stream in streams {
            let barrier = Arc::clone(&barrier);
            let (failed, answered) = (&failed, &answered);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                for q in stream {
                    match client.knn(q, K, 0, 1.0) {
                        Ok(hits) => {
                            std::hint::black_box(&hits);
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        barrier.wait();
        // Let the load get going, then kill shard 0's primary outright:
        // pooled router connections to it die mid-stream, fresh dials
        // are refused.
        std::thread::sleep(Duration::from_millis(50));
        let primary = backends[0].remove(0);
        primary.shutdown();
    });

    // The replies after the kill are still bit-identical.
    assert_bit_identity(addr, single_addr, union);

    let snap = cbir_obs::snapshot();
    let failovers: u64 = snap.router.iter().map(|r| r.failovers).sum();
    router.shutdown();
    for group in backends {
        for b in group {
            b.shutdown();
        }
    }
    (failed.load(Ordering::Relaxed), failovers)
}

fn median(rates: &mut [f64]) -> f64 {
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 6_000 } else { 120_000 };
    let per_client: usize = if quick { 12 } else { 60 };
    let iters = if quick { 1 } else { 3 };
    let cores = std::thread::available_parallelism().map_or(1, |t| t.get());

    let union = union_db(n);
    let streams = cbir_workload::query_streams(
        &cbir_workload::duplicated_histograms(n, DIM, 1.0, 3, 0xF15),
        CLIENTS,
        per_client,
        0.02,
        29,
    );

    println!(
        "F15: scatter-gather scaling, N={n}, d={DIM}, k={K}, {CLIENTS} clients x {per_client} \
         queries, linear scan per shard, {cores} core(s)\n"
    );

    // Single node serving the union corpus: the baseline for both the
    // bit-identity gate and the throughput ratio.
    let single = spawn_backend(union.clone());
    let single_addr = single.local_addr();

    // (shards, qps, vs_single, per-backend distance comps per sub-request)
    let mut rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    let mut single_qps = 0.0;
    for shards in [1usize, 2, 4] {
        let (backends, router) = spawn_tier(&union, shards, 1);
        // Correctness before timing, per topology.
        assert_bit_identity(router.local_addr(), single_addr, &union);
        // Warm pools and page cache at full concurrency, then measure.
        run_load(router.local_addr(), &streams);
        let mut rates: Vec<f64> = (0..iters)
            .map(|_| run_load(router.local_addr(), &streams))
            .collect();
        let qps = median(&mut rates);
        if shards == 1 {
            single_qps = qps;
        }
        let vs_single = qps / single_qps;
        // Aggregated backend counters through the router. The per-node
        // work a query costs — distance computations per backend
        // sub-request — is the quantity sharding divides, and unlike
        // wall-clock it does not depend on how many cores this machine
        // happens to give the co-located backend processes.
        let mut probe = Client::connect(router.local_addr()).expect("connect");
        let snap = probe.stats().expect("stats");
        let mean_batch = if snap.batches == 0 {
            0.0
        } else {
            snap.executed as f64 / snap.batches as f64
        };
        let work_per_subrequest = snap.distance_computations as f64 / snap.executed.max(1) as f64;
        println!(
            "  {shards} shard(s): {qps:8.0} q/s  ({vs_single:.2}x vs 1 shard)  \
             {work_per_subrequest:9.0} dists/query/node  \
             [bit-identity OK; backend mean batch {mean_batch:.1}, p50 {}us, p95 {}us]",
            snap.latency_p50_us, snap.latency_p95_us
        );
        rows.push((shards, qps, vs_single, work_per_subrequest));
        router.shutdown();
        for group in backends {
            for b in group {
                b.shutdown();
            }
        }
    }

    let (failed, failovers) = run_failover_leg(&union, &streams, single_addr);
    println!(
        "\nfailover: killed shard 0 primary mid-run -> {failed} failed queries, \
         {failovers} recorded failover(s), replies still bit-identical"
    );
    assert_eq!(failed, 0, "replica kill must be invisible to clients");
    assert!(
        failovers > 0,
        "covering a killed replica must be recorded in the router counters"
    );

    single.shutdown();

    let (_, _, speedup4, work4) = rows
        .iter()
        .copied()
        .find(|r| r.0 == 4)
        .expect("4-shard row");
    let work1 = rows[0].3;
    let work_reduction4 = work1 / work4.max(1.0);

    // The machine-independent scaling gate: 4 shards must cut the
    // per-node work a query costs by >= 3x (exactly 4x up to the mod
    // split's rounding), while the aggregate work stays the union scan.
    println!(
        "\nper-node work: {work1:.0} dists/query on 1 shard -> {work4:.0} on 4 shards \
         ({work_reduction4:.2}x reduction)"
    );
    assert!(
        work_reduction4 >= 3.0,
        "4 shards cut per-node work only {work_reduction4:.2}x (need >= 3x)"
    );

    // The wall-clock gate needs real parallel hardware: co-located
    // backend processes sharing fewer than 4 cores serialize on the
    // CPU (and on memory bandwidth), so the >= 3x QPS claim is only
    // asserted where the shards actually get their own core.
    let qps_gate = cores >= 4 && !quick;
    if qps_gate {
        assert!(
            speedup4 >= 3.0,
            "4 shards delivered only {speedup4:.2}x QPS over 1 shard (need >= 3x on {cores} cores)"
        );
    } else if !quick {
        println!(
            "qps ratio at 4 shards: {speedup4:.2}x — not gated on {cores} core(s); \
             sharding divides per-node work, and this machine cannot run 4 backends in parallel"
        );
    }

    if quick {
        // Quick mode exists for the correctness and failover gates;
        // reduced sizes make the scaling ratios meaningless.
        println!("\nquick mode: skipping results/BENCH_router_scaling.json");
        return;
    }

    let shard_rows: Vec<String> = rows
        .iter()
        .map(|(s, qps, v, w)| {
            format!(
                "{{\"shards\": {s}, \"qps\": {qps:.1}, \"vs_single_shard\": {v:.2}, \
                 \"distance_computations_per_query_per_node\": {w:.0}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"router_scaling\",\n  \"n\": {n},\n  \"dim\": {DIM},\n  \"k\": {K},\n  \"clients\": {CLIENTS},\n  \"per_client\": {per_client},\n  \"cores\": {cores},\n  \"index\": \"linear\",\n  \"measure\": \"l1\",\n  \"scheme\": \"mod\",\n  \"exactness\": \"router replies asserted frame-level bit-identical to a single node over the union corpus, before timing and after the replica kill\",\n  \"topologies\": [\n    {}\n  ],\n  \"failover\": {{\"shards\": 2, \"replicas\": 2, \"killed\": \"shard 0 primary\", \"failed_queries\": {failed}, \"recorded_failovers\": {failovers}}},\n  \"per_node_work_reduction_4_shards\": {work_reduction4:.2},\n  \"qps_ratio_4_shards\": {speedup4:.2},\n  \"qps_ratio_gated\": {qps_gate}\n}}\n",
        shard_rows.join(",\n    "),
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_router_scaling.json", json).expect("write results");
    println!("\nwrote results/BENCH_router_scaling.json");
}
