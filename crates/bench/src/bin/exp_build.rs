//! **T3 + T5 — index construction cost and memory footprint.**
//!
//! Build wall-clock per index as N grows (T3), and structure bytes per
//! indexed object at fixed N for two dimensionalities (T5). The R\*-tree
//! is reported for both of its construction paths (STR bulk load and
//! one-by-one R\* insertion) since their costs differ by design.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_build [--quick]`

use cbir_bench::{clustered_dataset, fmt_ms, index_lineup, Table};
use cbir_core::build_index;
use cbir_distance::Measure;
use cbir_index::{RStarTree, SearchIndex};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 5_000, 10_000, 50_000]
    };
    const DIM: usize = 32;

    println!("T3: index build time, d={DIM}, clustered workload\n");
    let mut t3 = Table::new(&["N", "index", "build-ms"]);
    for &n in sizes {
        let dataset = clustered_dataset(n, DIM, 3);
        for kind in index_lineup() {
            let ds = dataset.clone();
            let start = Instant::now();
            let index = build_index(&kind, ds, Measure::L2).expect("build");
            let elapsed = start.elapsed();
            std::hint::black_box(index.len());
            t3.row(vec![
                n.to_string(),
                kind.name().to_string(),
                fmt_ms(elapsed),
            ]);
        }
        // R* incremental insertion path (the expensive dynamic build).
        let incr_n = n.min(10_000); // keep the quadratic-ish path bounded
        let ds = clustered_dataset(incr_n, DIM, 3);
        let start = Instant::now();
        let rt = RStarTree::build_incremental(ds).expect("build");
        let elapsed = start.elapsed();
        std::hint::black_box(rt.len());
        t3.row(vec![
            incr_n.to_string(),
            if incr_n < n {
                "r*-insert (capped)"
            } else {
                "r*-insert"
            }
            .to_string(),
            fmt_ms(elapsed),
        ]);
    }
    t3.print();

    println!("\nT5: index structure memory (bytes per object), N=10000\n");
    let mut t5 = Table::new(&["d", "index", "bytes-total", "bytes/object"]);
    for &d in &[8usize, 32] {
        let n = 10_000;
        let dataset = clustered_dataset(n, d, 9);
        for kind in index_lineup() {
            let index = build_index(&kind, dataset.clone(), Measure::L2).expect("build");
            let bytes = index.structure_bytes();
            t5.row(vec![
                d.to_string(),
                kind.name().to_string(),
                bytes.to_string(),
                format!("{:.1}", bytes as f64 / n as f64),
            ]);
        }
    }
    t5.print();
    println!("\nExpected shape: linear is free to build; tree builds are");
    println!("O(N log N)-ish; structure overhead is a few bytes per object,");
    println!("small next to the signature data itself (4d bytes/object).");
}
