//! **F5 — ablation: Antipole cluster-diameter threshold.**
//!
//! The tree's single tuning knob trades build work against query pruning:
//! small diameters produce many small clusters (deep tree, more build
//! distance computations, better query pruning); large diameters collapse
//! toward one flat cluster (cheap build, scan-like queries). The sweep
//! also reports the auto-tuned suggestion for reference.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_antipole_ablation [--quick]`

use cbir_bench::{clustered_dataset, fmt_ms, standard_queries, Table};
use cbir_distance::Measure;
use cbir_index::{AntipoleTree, SearchIndex, SearchStats};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 5_000 } else { 20_000 };
    const DIM: usize = 16;
    const K: usize = 10;
    let n_queries = if quick { 15 } else { 40 };

    let dataset = clustered_dataset(n, DIM, 51);
    let queries = standard_queries(&dataset, n_queries, 17);
    let suggested = AntipoleTree::suggest_diameter(&dataset, &Measure::L2);

    println!("F5: antipole diameter ablation, N={n}, d={DIM}, k={K}");
    println!("auto-suggested diameter: {suggested:.2}\n");

    let mut table = Table::new(&[
        "diameter",
        "build-ms",
        "clusters",
        "max-cluster-radius",
        "dist-comps/query",
    ]);
    let factors = [0.125f32, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0];
    for &f in &factors {
        let diameter = suggested * f;
        let start = Instant::now();
        let tree = AntipoleTree::build(dataset.clone(), Measure::L2, diameter).expect("build");
        let build = start.elapsed();
        let mut stats = SearchStats::new();
        for q in &queries {
            tree.knn_search(q, K, &mut stats);
        }
        table.row(vec![
            format!("{diameter:.2}"),
            fmt_ms(build),
            tree.cluster_count().to_string(),
            format!("{:.2}", tree.max_cluster_radius()),
            format!(
                "{:.0}",
                stats.distance_computations as f64 / queries.len() as f64
            ),
        ]);
    }
    table.print();
    println!("\nExpected shape: clusters shrink and query cost falls as the");
    println!("diameter tightens, at increasing build cost; past the sweet");
    println!("spot, further splitting buys little.");
}
