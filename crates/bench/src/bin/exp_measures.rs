//! **T4 — distance-measure comparison.**
//!
//! Same signatures (256-bin HSV color histograms), different comparison
//! rules: retrieval quality (mAP, P@10) and evaluation cost per measure.
//! The paper-shape claims: histogram-aware measures (intersection,
//! chi-square, match) meet or beat plain L2; the cross-bin quadratic form
//! is the most expensive by far; L1 ≈ intersection on normalized
//! histograms.
//!
//! Run: `cargo run --release -p cbir-bench --bin exp_measures [--quick]`

use cbir_bench::{fmt_us, Table};
use cbir_core::eval::{average_precision, mean, precision_at_k};
use cbir_core::{ImageDatabase, IndexKind, QueryEngine};
use cbir_distance::{Measure, QuadraticForm};
use cbir_features::{Pipeline, Quantizer};
use cbir_index::SearchStats;
use cbir_workload::{Corpus, CorpusSpec};
use std::collections::HashSet;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (classes, per_class) = if quick { (6, 15) } else { (10, 40) };

    let corpus = Corpus::generate(CorpusSpec {
        classes,
        images_per_class: per_class,
        image_size: 64,
        jitter: 0.55,
        noise: 0.05,
        seed: 424242,
    });
    let quantizer = Quantizer::hsv_default();
    let pipeline = Pipeline::new(
        64,
        vec![cbir_features::FeatureSpec::ColorHistogram(
            quantizer.clone(),
        )],
    )
    .expect("pipeline");
    let mut db = ImageDatabase::new(pipeline);
    for (i, img) in corpus.images.iter().enumerate() {
        db.insert_labeled(format!("img-{i}"), corpus.labels[i] as u32, img)
            .expect("insert");
    }

    // Cross-bin similarity matrix from the quantizer's bin geometry.
    let positions: Vec<Vec<f32>> = (0..quantizer.n_bins())
        .map(|b| quantizer.bin_position(b))
        .collect();
    let quadratic = QuadraticForm::from_bin_positions(&positions);

    let measures: Vec<Measure> = vec![
        Measure::L1,
        Measure::L2,
        Measure::LInf,
        Measure::Intersection,
        Measure::ChiSquare,
        Measure::Match,
        Measure::Cosine,
        Measure::Jeffrey,
        Measure::Bhattacharyya,
        Measure::Quadratic(quadratic),
    ];
    let queries: Vec<usize> = (0..corpus.len())
        .step_by((corpus.len() / if quick { 15 } else { 40 }).max(1))
        .collect();

    println!(
        "T4: distance-measure comparison on 256-bin HSV histograms, {classes} classes x {per_class}, {} queries\n",
        queries.len()
    );
    let mut table = Table::new(&["measure", "metric?", "P@10", "mAP", "us/query"]);
    for measure in measures {
        let engine =
            QueryEngine::build(db.clone(), IndexKind::Linear, measure.clone()).expect("engine");
        let mut p10s = Vec::new();
        let mut aps = Vec::new();
        let start = Instant::now();
        for &query in &queries {
            let mut stats = SearchStats::new();
            let hits = engine
                .query_by_id(query, corpus.len() - 1, &mut stats)
                .expect("query");
            let ranked: Vec<usize> = hits.iter().map(|h| h.id).collect();
            let relevant: HashSet<usize> = corpus.relevant_to(query).into_iter().collect();
            p10s.push(precision_at_k(&ranked, &relevant, 10));
            aps.push(average_precision(&ranked, &relevant));
        }
        let per_query = start.elapsed() / queries.len() as u32;
        table.row(vec![
            measure.name().to_string(),
            if measure.is_true_metric() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            format!("{:.3}", mean(&p10s)),
            format!("{:.3}", mean(&aps)),
            fmt_us(per_query),
        ]);
    }
    table.print();
    println!("\nExpected shape: bin-by-bin measures (L1 = 2x intersection on");
    println!("normalized input, chi-square) cluster together; the cross-bin");
    println!("measures (match distance, quadratic form) rank best because they");
    println!("credit perceptually-similar-but-unequal bins; the quadratic form");
    println!("is by far the most expensive per query (O(d^2) worst case vs O(d)).");
}
