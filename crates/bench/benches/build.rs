//! Criterion microbenchmarks for index construction (supports T3).

use cbir_bench::clustered_dataset;
use cbir_distance::Measure;
use cbir_index::{AntipoleTree, KdTree, RStarTree, VpTree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build_n5000_d16");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let dataset = clustered_dataset(5_000, 16, 42);

    group.bench_function(BenchmarkId::from_parameter("kd_tree"), |b| {
        b.iter(|| std::hint::black_box(KdTree::build(dataset.clone(), Measure::L2).unwrap()));
    });
    group.bench_function(BenchmarkId::from_parameter("vp_tree"), |b| {
        b.iter(|| std::hint::black_box(VpTree::build(dataset.clone(), Measure::L2).unwrap()));
    });
    let diameter = AntipoleTree::suggest_diameter(&dataset, &Measure::L2);
    group.bench_function(BenchmarkId::from_parameter("antipole"), |b| {
        b.iter(|| {
            std::hint::black_box(
                AntipoleTree::build(dataset.clone(), Measure::L2, diameter).unwrap(),
            )
        });
    });
    group.bench_function(BenchmarkId::from_parameter("rstar_str"), |b| {
        b.iter(|| std::hint::black_box(RStarTree::bulk_load(dataset.clone()).unwrap()));
    });
    group.finish();

    let mut group = c.benchmark_group("rstar_incremental_n1000_d16");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let small = clustered_dataset(1_000, 16, 43);
    group.bench_function("rstar_insert", |b| {
        b.iter(|| std::hint::black_box(RStarTree::build_incremental(small.clone()).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
