//! Microbenchmark: index construction (supports T3). Plain harness so the
//! workspace resolves offline.
//!
//! Run: `cargo bench -p cbir-bench --bench build`

use cbir_bench::{clustered_dataset, fmt_ms, time_median, Table};
use cbir_distance::Measure;
use cbir_index::{AntipoleTree, KdTree, RStarTree, VpTree};

fn main() {
    let dataset = clustered_dataset(5_000, 16, 42);
    let diameter = AntipoleTree::suggest_diameter(&dataset, &Measure::L2);

    println!("index_build_n5000_d16: median of 5 builds\n");
    let mut table = Table::new(&["index", "ms/build"]);
    let mut bench = |name: &str, f: &mut dyn FnMut()| {
        let d = time_median(5, f);
        table.row(vec![name.to_string(), fmt_ms(d)]);
    };
    bench("kd_tree", &mut || {
        std::hint::black_box(KdTree::build(dataset.clone(), Measure::L2).unwrap());
    });
    bench("vp_tree", &mut || {
        std::hint::black_box(VpTree::build(dataset.clone(), Measure::L2).unwrap());
    });
    bench("antipole", &mut || {
        std::hint::black_box(AntipoleTree::build(dataset.clone(), Measure::L2, diameter).unwrap());
    });
    bench("rstar_str", &mut || {
        std::hint::black_box(RStarTree::bulk_load(dataset.clone()).unwrap());
    });

    let small = clustered_dataset(1_000, 16, 43);
    bench("rstar_insert_n1000", &mut || {
        std::hint::black_box(RStarTree::build_incremental(small.clone()).unwrap());
    });
    table.print();
}
