//! Microbenchmark: distance evaluation cost per measure (supports T4's
//! cost column). Plain harness so the workspace resolves offline.
//!
//! Run: `cargo bench -p cbir-bench --bench distance`

use cbir_bench::{time_median, Table};
use cbir_distance::{Measure, QuadraticForm};
use cbir_workload::histograms;

fn main() {
    const DIM: usize = 256;
    const INNER: usize = 10_000;
    let hs = histograms(2, DIM, 1.0, 5);
    let (a, b) = (&hs[0], &hs[1]);

    let measures: Vec<Measure> = vec![
        Measure::L1,
        Measure::L2,
        Measure::LInf,
        Measure::Intersection,
        Measure::ChiSquare,
        Measure::Match,
        Measure::Cosine,
        Measure::Jeffrey,
        Measure::Bhattacharyya,
        Measure::Quadratic(QuadraticForm::identity(DIM)),
    ];

    println!("distance_d256: single pair, median of 21 x {INNER} evals\n");
    let mut table = Table::new(&["measure", "ns/eval"]);
    for m in measures {
        let d = time_median(21, || {
            for _ in 0..INNER {
                std::hint::black_box(m.distance(std::hint::black_box(a), std::hint::black_box(b)));
            }
        });
        table.row(vec![
            m.name().to_string(),
            format!("{:.1}", d.as_secs_f64() * 1e9 / INNER as f64),
        ]);
    }
    table.print();
}
