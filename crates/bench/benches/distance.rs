//! Criterion microbenchmarks for distance evaluation (supports T4's cost
//! column).

use cbir_distance::{Measure, QuadraticForm};
use cbir_workload::histograms;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_distance(c: &mut Criterion) {
    const DIM: usize = 256;
    let hs = histograms(2, DIM, 1.0, 5);
    let (a, b) = (&hs[0], &hs[1]);

    let measures: Vec<Measure> = vec![
        Measure::L1,
        Measure::L2,
        Measure::LInf,
        Measure::Intersection,
        Measure::ChiSquare,
        Measure::Match,
        Measure::Cosine,
        Measure::Jeffrey,
        Measure::Bhattacharyya,
        Measure::Quadratic(QuadraticForm::identity(DIM)),
    ];

    let mut group = c.benchmark_group("distance_d256");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for m in measures {
        group.bench_function(BenchmarkId::from_parameter(m.name()), |bch| {
            bch.iter(|| std::hint::black_box(m.distance(a, b)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
