//! Microbenchmark: query latency on the batched execution path (supports
//! F1, F3, F4). Plain harness so the workspace resolves offline.
//!
//! Run: `cargo bench -p cbir-bench --bench query`

use cbir_bench::{
    build_lineup_index, clustered_dataset, fmt_us, index_lineup, standard_queries, time_median,
    Table,
};
use cbir_index::BatchStats;

fn main() {
    let dataset = clustered_dataset(20_000, 16, 7);
    let queries = standard_queries(&dataset, 16, 9);

    println!("knn10 / range5 over N=20000 d=16, batched (16 queries), median of 5\n");
    let mut table = Table::new(&["index", "knn us/query", "range us/query"]);
    for kind in index_lineup() {
        let index = build_lineup_index(&kind, dataset.clone());
        let knn = time_median(5, || {
            let mut stats = BatchStats::new();
            std::hint::black_box(index.knn_batch(&queries, 10, &mut stats));
        });
        let range = time_median(5, || {
            let mut stats = BatchStats::new();
            std::hint::black_box(index.range_batch(&queries, 5.0, &mut stats));
        });
        table.row(vec![
            kind.name().to_string(),
            fmt_us(knn / queries.len() as u32),
            fmt_us(range / queries.len() as u32),
        ]);
    }
    table.print();
}
