//! Criterion microbenchmarks for query latency (supports F1, F3, F4).

use cbir_bench::{build_lineup_index, clustered_dataset, index_lineup, standard_queries};
use cbir_index::SearchStats;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_query(c: &mut Criterion) {
    let dataset = clustered_dataset(20_000, 16, 7);
    let queries = standard_queries(&dataset, 16, 9);

    let mut group = c.benchmark_group("knn10_n20000_d16");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for kind in index_lineup() {
        let index = build_lineup_index(&kind, dataset.clone());
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            let mut qi = 0usize;
            b.iter(|| {
                let mut stats = SearchStats::new();
                let q = &queries[qi % queries.len()];
                qi += 1;
                std::hint::black_box(index.knn_search(q, 10, &mut stats));
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("range_n20000_d16");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for kind in index_lineup() {
        let index = build_lineup_index(&kind, dataset.clone());
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            let mut qi = 0usize;
            b.iter(|| {
                let mut stats = SearchStats::new();
                let q = &queries[qi % queries.len()];
                qi += 1;
                std::hint::black_box(index.range_search(q, 5.0, &mut stats));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
