//! Microbenchmark: feature extraction cost per descriptor (supports T1).
//! Plain harness so the workspace resolves offline.
//!
//! Run: `cargo bench -p cbir-bench --bench extraction`

use cbir_bench::{fmt_ms, time_median, Table};
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_workload::{Corpus, CorpusSpec};

fn main() {
    let corpus = Corpus::generate(CorpusSpec {
        classes: 2,
        images_per_class: 2,
        image_size: 64,
        jitter: 0.5,
        noise: 0.05,
        seed: 1,
    });
    let img = &corpus.images[0];

    let specs: Vec<(&str, FeatureSpec)> = vec![
        (
            "color_hist_hsv256",
            FeatureSpec::ColorHistogram(Quantizer::hsv_default()),
        ),
        ("color_moments", FeatureSpec::ColorMoments),
        (
            "correlogram_64x4",
            FeatureSpec::Correlogram {
                quantizer: Quantizer::rgb_compact(),
                distances: vec![1, 3, 5, 7],
            },
        ),
        ("glcm16", FeatureSpec::Glcm { levels: 16 }),
        ("tamura", FeatureSpec::Tamura),
        ("wavelet3", FeatureSpec::Wavelet { levels: 3 }),
        ("edge_orient16", FeatureSpec::EdgeOrientation { bins: 16 }),
        ("hu_moments", FeatureSpec::HuMoments),
        ("dt_hist16", FeatureSpec::DtHistogram { bins: 16 }),
    ];

    println!("extract_64px: median of 7 extractions\n");
    let mut table = Table::new(&["feature", "ms/image"]);
    for (name, spec) in specs {
        let pipeline = Pipeline::new(64, vec![spec]).unwrap();
        let d = time_median(7, || {
            std::hint::black_box(pipeline.extract(img).unwrap());
        });
        table.row(vec![name.to_string(), fmt_ms(d)]);
    }
    let full = Pipeline::full_default();
    let d = time_median(7, || {
        std::hint::black_box(full.extract(img).unwrap());
    });
    table.row(vec!["full_default".to_string(), fmt_ms(d)]);
    table.print();
}
