//! Criterion microbenchmarks for feature extraction (supports T1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_workload::{Corpus, CorpusSpec};
use std::time::Duration;

fn bench_extraction(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusSpec {
        classes: 2,
        images_per_class: 2,
        image_size: 64,
        jitter: 0.5,
        noise: 0.05,
        seed: 1,
    });
    let img = &corpus.images[0];

    let specs: Vec<(&str, FeatureSpec)> = vec![
        (
            "color_hist_hsv256",
            FeatureSpec::ColorHistogram(Quantizer::hsv_default()),
        ),
        ("color_moments", FeatureSpec::ColorMoments),
        (
            "correlogram_64x4",
            FeatureSpec::Correlogram {
                quantizer: Quantizer::rgb_compact(),
                distances: vec![1, 3, 5, 7],
            },
        ),
        ("glcm16", FeatureSpec::Glcm { levels: 16 }),
        ("tamura", FeatureSpec::Tamura),
        ("wavelet3", FeatureSpec::Wavelet { levels: 3 }),
        ("edge_orient16", FeatureSpec::EdgeOrientation { bins: 16 }),
        ("hu_moments", FeatureSpec::HuMoments),
        ("dt_hist16", FeatureSpec::DtHistogram { bins: 16 }),
    ];

    let mut group = c.benchmark_group("extract_64px");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for (name, spec) in specs {
        let pipeline = Pipeline::new(64, vec![spec]).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| std::hint::black_box(pipeline.extract(img).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("extract_full_pipeline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let full = Pipeline::full_default();
    group.bench_function("full_default", |b| {
        b.iter(|| std::hint::black_box(full.extract(img).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
